module G = Csap_graph.Graph
module Tree = Csap_graph.Tree
module Delay = Csap_dsim.Delay
module Net = Csap_dsim.Net

module Run = struct
  type handle = ..

  type cfg = {
    graph : G.t;
    root : int;
    delay : Delay.t option;
    adversary : Csap_dsim.Adversary.t option;
    faults : Csap_dsim.Fault.plan option;
    reliable : bool;
    trace : string option;
    engine : handle option;
    pulses : int option;
    strip : int option;
    k : int option;
    q : float option;
    domains : int option;
  }

  let make ?(root = 0) ?delay ?adversary ?faults ?(reliable = false) ?trace
      ?engine ?pulses ?strip ?k ?q ?domains graph =
    { graph; root; delay; adversary; faults; reliable; trace; engine; pulses;
      strip; k; q; domains }

  let delay cfg = Option.value cfg.delay ~default:Delay.Exact
end

module Outcome = struct
  type payload = ..

  type payload +=
    | No_payload
    | Spanning_tree of Tree.t
    | Flood_wave of { tree : Tree.t; arrival : float array }
    | Dfs_walk of { tree : Tree.t; est_c : int; est_r : int }
    | Clock_pulses of Clock_sync.result
    | Sync_states of {
        source : int;
        states : Spt_synch.state array;
        pulses : int;
        proto_comm : int;
      }
    | Outputs of int array
    | Gn_bounds of Lower_bound.gn_run

  type t = {
    protocol : string;
    measures : Measures.t;
    retransmissions : int;
    restarts : int;
    payload : payload;
    info : (string * string) list;
  }

  let tree t =
    match t.payload with
    | Spanning_tree tr -> Some tr
    | Flood_wave { tree; _ } -> Some tree
    | Dfs_walk { tree; _ } -> Some tree
    | _ -> None
end

type category =
  | Connectivity
  | Mst
  | Spt
  | Slt
  | Global
  | Clock
  | Synchronizer
  | Bound

let category_name = function
  | Connectivity -> "connectivity"
  | Mst -> "mst"
  | Spt -> "spt"
  | Slt -> "slt"
  | Global -> "global"
  | Clock -> "clock"
  | Synchronizer -> "synchronizer"
  | Bound -> "bound"

type caps = {
  needs_root : bool;
  supports_faults : bool;
  supports_reliable : bool;
  synchronous_only : bool;
  reuses_engine : bool;
  fixed_family : bool;
  supports_domains : bool;
  supports_adaptive : bool;
}

let default_caps =
  {
    needs_root = true;
    supports_faults = true;
    supports_reliable = true;
    synchronous_only = false;
    reuses_engine = false;
    fixed_family = false;
    supports_domains = false;
    supports_adaptive = true;
  }

(* Which of the paper's parameters a claim in each category may
   mention. Connectivity through Global are graph protocols whose
   bounds are stated over the global parameters; clock synchronizers
   and synchronizers additionally use the neighbour distance [d]; the
   lower-bound family is stated purely over [E], [n], [V]. *)
let allowed_vars = function
  | Connectivity | Mst | Spt | Slt | Global ->
    Bound.[ N; LogN; E; V; D; W ]
  | Clock | Synchronizer -> Bound.all_vars
  | Bound -> Bound.[ N; E; V ]

module Claim = struct
  type metric = Comm | Time

  let metric_name = function Comm -> "comm" | Time -> "time"

  type t = {
    metric : metric;
    bound : Bound.expr;  (** canonical *)
    regime : string option;
        (** the capability regime the claim holds in, when narrower
            than "any clean run" *)
  }

  let make ?regime metric s =
    { metric; bound = Bound.of_string_exn s; regime }

  let comm ?regime s = make ?regime Comm s
  let time ?regime s = make ?regime Time s

  let to_string c =
    Printf.sprintf "%s = O(%s)%s" (metric_name c.metric)
      (Bound.to_string c.bound)
      (match c.regime with None -> "" | Some r -> "  [" ^ r ^ "]")
end

module type S = sig
  val name : string
  val summary : string
  val category : category
  val caps : caps

  (** The paper's claimed cost bounds for this protocol, as symbolic
      expressions over the measured parameters (checked by figure BD
      and [csap_cli bounds]). At least a communication claim; a time
      claim unless the protocol reports no meaningful time. *)
  val claimed : Claim.t list

  (** Build a reusable engine handle for multi-trial loops on the same
      graph; [None] when the protocol has no reusable state. *)
  val make_engine : ?delay:Delay.t -> G.t -> Run.handle option

  (** Raw runner; called by {!execute} after uniform validation. *)
  val run : Run.cfg -> Outcome.t

  (** Check the protocol's correctness condition against the sequential
      oracles (Dijkstra / Kruskal / synchronous reference / causality). *)
  val invariant : Run.cfg -> Outcome.t -> (unit, string) result
end

type entry = (module S)

(* ------------------------------------------------------------------ *)
(* Shared oracle checks.                                               *)
(* ------------------------------------------------------------------ *)

let stats_of (s : Net.stats) =
  (s.Net.retransmissions, s.Net.restarts)

let clean cfg = cfg.Run.faults = None && not cfg.Run.reliable

(* True when the run's schedule is the deterministic exact-delay default.
   An adversary — even an oblivious one still sitting unfolded in the
   cfg — means the schedule is something else. *)
let exact_delay cfg =
  cfg.Run.adversary = None
  && match cfg.Run.delay with None | Some Delay.Exact -> true | _ -> false

let check_spanning g tree =
  if Tree.is_spanning_tree_of g tree then Ok ()
  else Error "not a spanning tree of the graph"

let check_mst g tree =
  match check_spanning g tree with
  | Error _ as e -> e
  | Ok () ->
    if Csap_graph.Mst.is_mst g tree then Ok ()
    else Error "spanning tree is not an MST"

(* Path distance from the root inside [tree] must equal the true
   shortest-path distance for every vertex. *)
let check_spt g ~root tree =
  match check_spanning g tree with
  | Error _ as e -> e
  | Ok () ->
    let sssp = Csap_graph.Paths.dijkstra g ~src:root in
    let ok = ref (Ok ()) in
    for v = 0 to G.n g - 1 do
      if !ok = Ok () then begin
        let d = ref 0 and u = ref v in
        let continue = ref true in
        while !continue do
          match Tree.parent tree !u with
          | Some (p, w) ->
            d := !d + w;
            u := p
          | None -> continue := false
        done;
        if !d <> sssp.Csap_graph.Paths.dist.(v) then
          ok :=
            Error
              (Printf.sprintf
                 "vertex %d: tree distance %d <> shortest distance %d" v !d
                 sssp.Csap_graph.Paths.dist.(v))
      end
    done;
    !ok

let no_engine ?delay _g =
  ignore delay;
  None

let outcome ~name ~measures ?(transport = Net.no_stats) ?(info = []) payload =
  let retransmissions, restarts = stats_of transport in
  { Outcome.protocol = name; measures; retransmissions; restarts; payload;
    info }

(* ------------------------------------------------------------------ *)
(* Section 6/7: connectivity.                                          *)
(* ------------------------------------------------------------------ *)

type Run.handle += Flood_engine of Flood.engine

module Flood_p = struct
  let name = "flood"
  let summary = "CON_flood: spanning tree by flooding (Section 6.1)"
  let category = Connectivity
  let caps = { default_caps with reuses_engine = true; supports_domains = true }

  let claimed =
    [
      Claim.comm "2 * E";
      Claim.time ~regime:"clean run, delays bounded by weights" "D";
    ]

  let make_engine ?delay g = Some (Flood_engine (Flood.make_engine ?delay g))

  let run cfg =
    let g = cfg.Run.graph and source = cfg.Run.root in
    if cfg.Run.reliable then begin
      let r =
        Flood.run_reliable ?delay:cfg.Run.delay ?faults:cfg.Run.faults g
          ~source
      in
      let inner = r.Flood.result in
      outcome ~name ~measures:inner.Flood.measures
        ~transport:
          {
            Net.retransmissions = r.Flood.retransmissions;
            restarts = r.Flood.restarts;
          }
        (Outcome.Flood_wave
           { tree = inner.Flood.tree; arrival = inner.Flood.arrival })
    end
    else begin
      match cfg.Run.domains with
      | Some d when d > 1 ->
        let r = Flood.run_partitioned ?delay:cfg.Run.delay ~domains:d g ~source in
        outcome ~name ~measures:r.Flood.measures
          ~info:[ ("domains", string_of_int d) ]
          (Outcome.Flood_wave
             { tree = r.Flood.tree; arrival = r.Flood.arrival })
      | _ ->
        let engine =
          match cfg.Run.engine with
          | Some (Flood_engine e) -> Some e
          | _ -> None
        in
        let r =
          Flood.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults ?engine g
            ~source
        in
        outcome ~name ~measures:r.Flood.measures
          (Outcome.Flood_wave { tree = r.Flood.tree; arrival = r.Flood.arrival })
    end

  let invariant cfg (o : Outcome.t) =
    match o.Outcome.payload with
    | Outcome.Flood_wave { tree; arrival } -> (
      match check_spanning cfg.Run.graph tree with
      | Error _ as e -> e
      | Ok () ->
        if clean cfg then begin
          (* Delays never exceed weights, so no schedule can make the
             wave slower than the weighted shortest path; under exact
             delays it arrives exactly on it. *)
          let sssp =
            Csap_graph.Paths.dijkstra cfg.Run.graph ~src:cfg.Run.root
          in
          let exact = exact_delay cfg in
          let ok = ref (Ok ()) in
          Array.iteri
            (fun v t ->
              let d = float_of_int sssp.Csap_graph.Paths.dist.(v) in
              if
                !ok = Ok ()
                && (t > d +. 1e-9 || (exact && t < d -. 1e-9))
              then
                ok :=
                  Error
                    (Printf.sprintf
                       "vertex %d: arrival %g vs shortest distance %g" v t d))
            arrival;
          !ok
        end
        else Ok ())
    | _ -> Error "unexpected payload"
end

module Dfs_p = struct
  let name = "dfs-token"
  let summary = "token DFS with root/centre cost estimates (Section 6.2)"
  let category = Connectivity
  let caps = default_caps
  let claimed = [ Claim.comm "4 * E"; Claim.time "4 * E" ]
  let make_engine = no_engine

  let run cfg =
    let r =
      Dfs_token.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Dfs_token.measures
      ~transport:r.Dfs_token.transport
      (Outcome.Dfs_walk
         {
           tree = r.Dfs_token.dfs_tree;
           est_c = r.Dfs_token.final_center_estimate;
           est_r = r.Dfs_token.final_root_estimate;
         })

  let invariant cfg (o : Outcome.t) =
    match o.Outcome.payload with
    | Outcome.Dfs_walk { tree; est_c; est_r } -> (
      match check_spanning cfg.Run.graph tree with
      | Error _ as e -> e
      | Ok () ->
        (* The 2-approximation invariant of Section 6.2. *)
        if est_c = 0 || (est_r <= est_c && est_c <= 2 * est_r) then Ok ()
        else
          Error
            (Printf.sprintf "estimates out of relation: EST_C %d, EST_R %d"
               est_c est_r))
    | _ -> Error "unexpected payload"
end

module Con_hybrid_p = struct
  let name = "con-hybrid"
  let summary = "CON_hybrid: DFS raced against MST_centr (Section 7.2)"
  let category = Connectivity
  let caps = default_caps

  let claimed =
    [ Claim.comm "min(E, n * V)"; Claim.time "min(E, n * V)" ]

  let make_engine = no_engine

  let run cfg =
    let r =
      Con_hybrid.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Con_hybrid.measures
      ~transport:r.Con_hybrid.transport
      ~info:
        [
          ( "winner",
            match r.Con_hybrid.winner with
            | Con_hybrid.Dfs -> "dfs"
            | Con_hybrid.Mst_centr -> "mst-centr" );
          ("dfs_estimate", string_of_int r.Con_hybrid.dfs_estimate);
          ("mst_estimate", string_of_int r.Con_hybrid.mst_estimate);
        ]
      (Outcome.Spanning_tree r.Con_hybrid.spanning_tree)

  let invariant cfg (o : Outcome.t) =
    match Outcome.tree o with
    | Some tree -> check_spanning cfg.Run.graph tree
    | None -> Error "unexpected payload"
end

(* ------------------------------------------------------------------ *)
(* Sections 6.3 / 8: minimum spanning trees.                           *)
(* ------------------------------------------------------------------ *)

let mst_invariant cfg (o : Outcome.t) =
  match Outcome.tree o with
  | Some tree -> check_mst cfg.Run.graph tree
  | None -> Error "unexpected payload"

module Mst_centr_p = struct
  let name = "mst-centr"
  let summary = "MST_centr: full-information distributed Prim (Section 6.3)"
  let category = Mst
  let caps = default_caps
  let claimed = [ Claim.comm "n * V"; Claim.time "n * V" ]
  let make_engine = no_engine

  let run cfg =
    let r =
      Centr_growth.run_mst ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Centr_growth.measures
      ~transport:r.Centr_growth.transport
      ~info:[ ("phases", string_of_int r.Centr_growth.phases) ]
      (Outcome.Spanning_tree r.Centr_growth.grown_tree)

  let invariant = mst_invariant
end

module Mst_ghs_p = struct
  let name = "mst-ghs"
  let summary = "GHS minimum spanning tree (the Section 8 baseline)"
  let category = Mst
  let caps = { default_caps with needs_root = false }

  let claimed =
    [ Claim.comm "E + V * logn"; Claim.time "E + V * logn" ]

  let make_engine = no_engine

  let run cfg =
    if cfg.Run.reliable then begin
      let r =
        Mst_ghs.run_reliable ?delay:cfg.Run.delay ?faults:cfg.Run.faults
          cfg.Run.graph
      in
      let inner = r.Mst_ghs.result in
      outcome ~name ~measures:inner.Mst_ghs.measures
        ~transport:
          {
            Net.retransmissions = r.Mst_ghs.retransmissions;
            restarts = r.Mst_ghs.restarts;
          }
        ~info:[ ("max_level", string_of_int inner.Mst_ghs.max_level) ]
        (Outcome.Spanning_tree inner.Mst_ghs.mst)
    end
    else begin
      let r =
        Mst_ghs.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults cfg.Run.graph
      in
      outcome ~name ~measures:r.Mst_ghs.measures
        ~info:[ ("max_level", string_of_int r.Mst_ghs.max_level) ]
        (Outcome.Spanning_tree r.Mst_ghs.mst)
    end

  let invariant = mst_invariant
end

module Mst_fast_p = struct
  let name = "mst-fast"
  let summary = "MST_fast: guess doubling + parallel scans (Section 8.2)"
  let category = Mst
  let caps = { default_caps with needs_root = false }

  let claimed =
    [ Claim.comm "E * logn^2"; Claim.time "E * logn^2" ]

  let make_engine = no_engine

  let run cfg =
    let r =
      Mst_fast.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph
    in
    outcome ~name ~measures:r.Mst_fast.measures ~transport:r.Mst_fast.transport
      ~info:
        [
          ("phases", string_of_int r.Mst_fast.phases);
          ("scan_rounds", string_of_int r.Mst_fast.scan_rounds);
        ]
      (Outcome.Spanning_tree r.Mst_fast.mst)

  let invariant = mst_invariant
end

module Mst_hybrid_p = struct
  let name = "mst-hybrid"
  let summary = "MST_hybrid: GHS raced against MST_centr (Section 8.3)"
  let category = Mst

  let caps =
    { default_caps with supports_faults = false; supports_reliable = false }

  let claimed =
    [
      Claim.comm "min(E + V * logn, n * V)";
      Claim.time "min(E + V * logn, n * V)";
    ]

  let make_engine = no_engine

  let run cfg =
    let r =
      Mst_hybrid.run ?delay:cfg.Run.delay cfg.Run.graph ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Mst_hybrid.measures
      ~info:
        [
          ( "winner",
            match r.Mst_hybrid.winner with
            | Mst_hybrid.Ghs -> "ghs"
            | Mst_hybrid.Mst_centr -> "mst-centr" );
          ("ghs_demand", string_of_int r.Mst_hybrid.ghs_demand);
          ("centr_estimate", string_of_int r.Mst_hybrid.centr_estimate);
        ]
      (Outcome.Spanning_tree r.Mst_hybrid.mst)

  let invariant = mst_invariant
end

(* ------------------------------------------------------------------ *)
(* Sections 6.4 / 9: shortest-path trees.                              *)
(* ------------------------------------------------------------------ *)

let spt_invariant cfg (o : Outcome.t) =
  match Outcome.tree o with
  | Some tree -> check_spt cfg.Run.graph ~root:cfg.Run.root tree
  | None -> Error "unexpected payload"

module Spt_centr_p = struct
  let name = "spt-centr"
  let summary =
    "SPT_centr: full-information distributed Dijkstra (Section 6.4)"

  let category = Spt
  let caps = default_caps

  (* w(SPT) <= n * D, so n * w(SPT) is claimed as n^2 * D. *)
  let claimed = [ Claim.comm "n^2 * D"; Claim.time "n^2 * D" ]
  let make_engine = no_engine

  let run cfg =
    let r =
      Centr_growth.run_spt ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Centr_growth.measures
      ~transport:r.Centr_growth.transport
      ~info:[ ("phases", string_of_int r.Centr_growth.phases) ]
      (Outcome.Spanning_tree r.Centr_growth.grown_tree)

  let invariant = spt_invariant
end

module Spt_synch_p = struct
  let name = "spt-synch"
  let summary = "SPT_synch under the gamma_w synchronizer (Section 9.1)"
  let category = Spt
  let caps = default_caps

  let claimed =
    [
      Claim.comm "E + D * n * logn";
      Claim.time "D * n * logn";
    ]

  let make_engine = no_engine

  let run cfg =
    let r =
      Spt_synch.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable ?k:cfg.Run.k cfg.Run.graph
        ~source:cfg.Run.root
    in
    outcome ~name ~measures:r.Spt_synch.measures
      ~transport:r.Spt_synch.transport
      ~info:
        [
          ("proto_comm", string_of_int r.Spt_synch.proto_comm);
          ("overhead_comm", string_of_int r.Spt_synch.overhead_comm);
          ("transformed_pulses", string_of_int r.Spt_synch.transformed_pulses);
        ]
      (Outcome.Spanning_tree r.Spt_synch.tree)

  let invariant = spt_invariant
end

module Spt_recur_p = struct
  let name = "spt-recur"
  let summary = "SPT_recur: strip-synchronised relaxation (Section 9.2)"
  let category = Spt
  let caps = default_caps
  let claimed = [ Claim.comm "E^1.5"; Claim.time "E^1.5" ]
  let make_engine = no_engine

  let run cfg =
    let strip =
      match cfg.Run.strip with
      | Some s -> s
      | None -> Spt_recur.default_strip cfg.Run.graph
    in
    let r =
      Spt_recur.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable cfg.Run.graph ~source:cfg.Run.root ~strip
    in
    outcome ~name ~measures:r.Spt_recur.measures
      ~transport:r.Spt_recur.transport
      ~info:
        [
          ("strip", string_of_int strip);
          ("strips", string_of_int r.Spt_recur.strips);
          ("offer_comm", string_of_int r.Spt_recur.offer_comm);
          ("sync_comm", string_of_int r.Spt_recur.sync_comm);
        ]
      (Outcome.Spanning_tree r.Spt_recur.tree)

  let invariant = spt_invariant
end

module Spt_hybrid_p = struct
  let name = "spt-hybrid"
  let summary = "SPT_hybrid: budgeted dovetail of synch/recur (Section 9.3)"
  let category = Spt
  let caps = default_caps

  let claimed =
    [
      Claim.comm "min(E^1.5, E + D * n * logn)";
      Claim.time "min(E^1.5, D * n * logn)";
    ]

  let make_engine = no_engine

  let run cfg =
    let r =
      Spt_hybrid.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable ?k:cfg.Run.k ?strip:cfg.Run.strip
        cfg.Run.graph ~source:cfg.Run.root
    in
    outcome ~name ~measures:r.Spt_hybrid.winning_measures
      ~transport:r.Spt_hybrid.transport
      ~info:
        [
          ( "winner",
            match r.Spt_hybrid.winner with
            | Spt_hybrid.Synch -> "synch"
            | Spt_hybrid.Recur -> "recur" );
          ("total_comm", string_of_int r.Spt_hybrid.total_comm);
          ("epochs", string_of_int r.Spt_hybrid.epochs);
        ]
      (Outcome.Spanning_tree r.Spt_hybrid.tree)

  let invariant = spt_invariant
end

module Spt_async_p = struct
  let name = "spt-async"
  let summary =
    "asynchronous distance-wave SPT (native Bellman-Ford, Section 9)"

  let category = Spt

  let caps =
    {
      default_caps with
      supports_faults = false;
      supports_reliable = false;
      supports_domains = true;
    }

  let claimed =
    [
      Claim.comm "n * E";
      Claim.time ~regime:"clean run, delays bounded by weights" "D";
    ]

  let make_engine = no_engine

  let run cfg =
    let g = cfg.Run.graph and source = cfg.Run.root in
    let r =
      match cfg.Run.domains with
      | Some d when d > 1 ->
        Spt_async.run_partitioned ?delay:cfg.Run.delay ~domains:d g ~source
      | _ -> Spt_async.run ?delay:cfg.Run.delay g ~source
    in
    outcome ~name ~measures:r.Spt_async.measures
      ~info:
        (match cfg.Run.domains with
        | Some d when d > 1 -> [ ("domains", string_of_int d) ]
        | _ -> [])
      (Outcome.Spanning_tree r.Spt_async.tree)

  let invariant = spt_invariant
end

(* ------------------------------------------------------------------ *)
(* Section 2: shallow-light trees and global functions.                *)
(* ------------------------------------------------------------------ *)

module Slt_dist_p = struct
  let name = "slt-dist"
  let summary = "distributed shallow-light tree (Theorem 2.7)"
  let category = Slt
  let caps = default_caps
  let claimed = [ Claim.comm "n^2 * V"; Claim.time "n^2 * D" ]
  let make_engine = no_engine

  let run cfg =
    let r =
      Slt_distributed.run ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable ?q:cfg.Run.q cfg.Run.graph
        ~root:cfg.Run.root
    in
    outcome ~name ~measures:r.Slt_distributed.measures
      ~transport:r.Slt_distributed.transport
      ~info:[ ("q", string_of_float r.Slt_distributed.q) ]
      (Outcome.Spanning_tree r.Slt_distributed.tree)

  let invariant cfg (o : Outcome.t) =
    match Outcome.tree o with
    | None -> Error "unexpected payload"
    | Some tree -> (
      match check_spanning cfg.Run.graph tree with
      | Error _ as e -> e
      | Ok () ->
        let g = cfg.Run.graph in
        let q = Option.value cfg.Run.q ~default:2.0 in
        let sssp = Csap_graph.Paths.dijkstra g ~src:cfg.Run.root in
        let shallow = ref (Ok ()) in
        for v = 0 to G.n g - 1 do
          if !shallow = Ok () then begin
            let d = Tree.path_weight tree cfg.Run.root v in
            if
              float_of_int d
              > (q *. float_of_int sssp.Csap_graph.Paths.dist.(v)) +. 1e-9
            then
              shallow :=
                Error
                  (Printf.sprintf
                     "vertex %d: tree distance %d exceeds %g x %d" v d q
                     sssp.Csap_graph.Paths.dist.(v))
          end
        done;
        (match !shallow with
        | Error _ as e -> e
        | Ok () ->
          if q > 1.0 then begin
            let bound =
              (1.0 +. (2.0 /. (q -. 1.0)))
              *. float_of_int (Csap_graph.Mst.weight g)
            in
            if float_of_int (Tree.total_weight tree) > bound +. 1e-9 then
              Error
                (Printf.sprintf "tree weight %d exceeds lightness bound %g"
                   (Tree.total_weight tree) bound)
            else Ok ()
          end
          else Ok ()))
end

module Global_sum_p = struct
  let name = "global-sum"
  let summary = "global sum on a shallow-light tree (Corollary 2.3)"
  let category = Global
  let caps = default_caps

  (* Convergecast + broadcast over a locally built SLT: the tree
     weight is O(V) and its depth O(D). *)
  let claimed = [ Claim.comm "8 * V + 8 * D"; Claim.time "4 * D" ]
  let make_engine = no_engine

  let run cfg =
    let g = cfg.Run.graph in
    let values = Array.init (G.n g) (fun v -> v) in
    let r =
      Global_func.run_optimal ?delay:cfg.Run.delay ?faults:cfg.Run.faults
        ~reliable:cfg.Run.reliable ?q:cfg.Run.q g ~root:cfg.Run.root ~values
        Global_func.sum
    in
    outcome ~name ~measures:r.Global_func.measures
      ~transport:r.Global_func.transport
      (Outcome.Outputs r.Global_func.outputs)

  let invariant cfg (o : Outcome.t) =
    match o.Outcome.payload with
    | Outcome.Outputs outputs ->
      let n = G.n cfg.Run.graph in
      let expected = n * (n - 1) / 2 in
      if Array.for_all (fun x -> x = expected) outputs then Ok ()
      else Error (Printf.sprintf "some output differs from %d" expected)
    | _ -> Error "unexpected payload"
end

(* ------------------------------------------------------------------ *)
(* Section 3: clock synchronization.                                   *)
(* ------------------------------------------------------------------ *)

let clock_pulses cfg = Option.value cfg.Run.pulses ~default:6

let clock_invariant cfg (o : Outcome.t) =
  match o.Outcome.payload with
  | Outcome.Clock_pulses r ->
    if Clock_sync.check_causality cfg.Run.graph r then Ok ()
    else Error "causality violated: pulse p before a neighbour's pulse p-1"
  | _ -> Error "unexpected payload"

let clock_outcome ~name (r : Clock_sync.result) =
  outcome ~name ~measures:r.Clock_sync.measures
    ~transport:r.Clock_sync.transport
    ~info:
      [
        ("pulses", string_of_int r.Clock_sync.pulses);
        ("max_pulse_delay", string_of_float r.Clock_sync.max_pulse_delay);
        ("comm_per_pulse", string_of_float r.Clock_sync.comm_per_pulse);
      ]
    (Outcome.Clock_pulses r)

module Clock_alpha_p = struct
  let name = "clock-alpha"
  let summary = "clock synchronizer alpha*: direct exchange (Section 3)"
  let category = Clock
  let caps = { default_caps with needs_root = false }

  (* Fixed pulse count: the per-pulse costs of Section 3 with the
     pulse count absorbed into the constant. *)
  let claimed =
    [ Claim.comm ~regime:"per fixed pulse count" "E";
      Claim.time ~regime:"per fixed pulse count" "D + d" ]

  let make_engine = no_engine

  let run cfg =
    clock_outcome ~name
      (Clock_sync.run_alpha ?delay:cfg.Run.delay ?faults:cfg.Run.faults
         ~reliable:cfg.Run.reliable cfg.Run.graph ~pulses:(clock_pulses cfg))

  let invariant = clock_invariant
end

module Clock_beta_p = struct
  let name = "clock-beta"
  let summary = "clock synchronizer beta*: one global tree (Section 3)"
  let category = Clock
  let caps = { default_caps with needs_root = false }

  let claimed =
    [ Claim.comm ~regime:"per fixed pulse count" "E + V";
      Claim.time ~regime:"per fixed pulse count" "D" ]

  let make_engine = no_engine

  let run cfg =
    clock_outcome ~name
      (Clock_sync.run_beta ?delay:cfg.Run.delay ?faults:cfg.Run.faults
         ~reliable:cfg.Run.reliable cfg.Run.graph ~pulses:(clock_pulses cfg))

  let invariant = clock_invariant
end

module Clock_gamma_p = struct
  let name = "clock-gamma"
  let summary = "clock synchronizer gamma*: tree edge-cover (Section 3)"
  let category = Clock
  let caps = { default_caps with needs_root = false }

  let claimed =
    [ Claim.comm ~regime:"per fixed pulse count" "E + V * logn";
      Claim.time ~regime:"per fixed pulse count" "D + d * logn^2" ]

  let make_engine = no_engine

  let run cfg =
    clock_outcome ~name
      (Clock_sync.run_gamma ?delay:cfg.Run.delay ?faults:cfg.Run.faults
         ~reliable:cfg.Run.reliable cfg.Run.graph ~pulses:(clock_pulses cfg))

  let invariant = clock_invariant
end

(* ------------------------------------------------------------------ *)
(* Section 4/5: general synchronizers over the SPT wave protocol.      *)
(* ------------------------------------------------------------------ *)

let sync_pulses cfg =
  match cfg.Run.pulses with
  | Some p -> p
  | None -> Csap_graph.Paths.eccentricity cfg.Run.graph cfg.Run.root + 1

let sync_outcome ~name ~source ~pulses
    (o : (Spt_synch.state, int) Synchronizer.outcome) =
  outcome ~name ~measures:o.Synchronizer.total
    ~transport:
      {
        Net.retransmissions = o.Synchronizer.retransmissions;
        restarts = 0;
      }
    ~info:
      [
        ("ack_comm", string_of_int o.Synchronizer.ack_comm);
        ("control_comm", string_of_int o.Synchronizer.control_comm);
        ("amortized_comm", string_of_float o.Synchronizer.amortized_comm);
      ]
    (Outcome.Sync_states
       {
         source;
         states = o.Synchronizer.states;
         pulses;
         proto_comm = o.Synchronizer.proto_comm;
       })

let sync_invariant cfg (o : Outcome.t) =
  match o.Outcome.payload with
  | Outcome.Sync_states { source; states; pulses; proto_comm } ->
    let reference =
      Csap_dsim.Sync_runner.run cfg.Run.graph
        (Spt_synch.protocol ~source)
        ~pulses
    in
    if states <> reference.Csap_dsim.Sync_runner.states then
      Error "states differ from the synchronous reference execution"
    else if
      clean cfg
      && proto_comm <> reference.Csap_dsim.Sync_runner.weighted_comm
    then
      Error
        (Printf.sprintf
           "protocol communication %d <> synchronous reference %d" proto_comm
           reference.Csap_dsim.Sync_runner.weighted_comm)
    else Ok ()
  | _ -> Error "unexpected payload"

module Sync_alpha_p = struct
  let name = "sync-alpha"
  let summary = "synchronizer alpha_w running the SPT wave (Section 4)"
  let category = Synchronizer
  let caps = { default_caps with synchronous_only = true }

  (* The wave runs for O(D) pulses; alpha_w pays O(E) per pulse and
     O(d) time per pulse. *)
  let claimed = [ Claim.comm "D * E"; Claim.time "D * d" ]
  let make_engine = no_engine

  let run cfg =
    let source = cfg.Run.root and pulses = sync_pulses cfg in
    sync_outcome ~name ~source ~pulses
      (Synchronizer.run_alpha ?delay:cfg.Run.delay ?faults:cfg.Run.faults
         ~reliable:cfg.Run.reliable cfg.Run.graph
         (Spt_synch.protocol ~source)
         ~pulses)

  let invariant = sync_invariant
end

module Sync_beta_p = struct
  let name = "sync-beta"
  let summary = "synchronizer beta_w running the SPT wave (Section 4)"
  let category = Synchronizer
  let caps = { default_caps with synchronous_only = true }

  let claimed =
    [ Claim.comm "E + D * V"; Claim.time "D^2" ]

  let make_engine = no_engine

  let run cfg =
    let source = cfg.Run.root and pulses = sync_pulses cfg in
    sync_outcome ~name ~source ~pulses
      (Synchronizer.run_beta ?delay:cfg.Run.delay ?faults:cfg.Run.faults
         ~reliable:cfg.Run.reliable cfg.Run.graph
         (Spt_synch.protocol ~source)
         ~pulses)

  let invariant = sync_invariant
end

module Sync_gamma_p = struct
  let name = "sync-gamma-w"
  let summary =
    "synchronizer gamma_w over the normalized network (Sections 4-5)"

  let category = Synchronizer
  let caps = { default_caps with synchronous_only = true }

  let claimed =
    [ Claim.comm "E + D * n * logn"; Claim.time "D^2 * logn" ]

  let make_engine = no_engine

  let run cfg =
    let source = cfg.Run.root and pulses = sync_pulses cfg in
    let states, o =
      Synchronizer.run_transformed ?delay:cfg.Run.delay
        ?faults:cfg.Run.faults ~reliable:cfg.Run.reliable ?k:cfg.Run.k
        cfg.Run.graph
        (Spt_synch.protocol ~source)
        ~pulses
    in
    outcome ~name ~measures:o.Synchronizer.total
      ~transport:
        {
          Net.retransmissions = o.Synchronizer.retransmissions;
          restarts = 0;
        }
      ~info:
        [
          ("ack_comm", string_of_int o.Synchronizer.ack_comm);
          ("control_comm", string_of_int o.Synchronizer.control_comm);
        ]
      (Outcome.Sync_states
         { source; states; pulses; proto_comm = o.Synchronizer.proto_comm })

  let invariant cfg (o : Outcome.t) =
    (* The transformed pipeline reports communication on the normalized
       network; only the state comparison is meaningful here. *)
    match o.Outcome.payload with
    | Outcome.Sync_states { source; states; pulses; proto_comm = _ } ->
      let reference =
        Csap_dsim.Sync_runner.run cfg.Run.graph
          (Spt_synch.protocol ~source)
          ~pulses
      in
      if states = reference.Csap_dsim.Sync_runner.states then Ok ()
      else Error "states differ from the synchronous reference execution"
    | _ -> Error "unexpected payload"
end

(* ------------------------------------------------------------------ *)
(* Section 7.1: the lower-bound family.                                *)
(* ------------------------------------------------------------------ *)

module Lower_bound_p = struct
  let name = "lower-bound-gn"
  let summary = "executable Omega(min{E, nV}) witness on G_n (Section 7.1)"
  let category = Bound

  (* The run ignores cfg.delay entirely (the hybrid's comm bound is
     schedule-free), so an adaptive adversary would never be consulted:
     reject it rather than silently ignore it. *)
  let caps =
    {
      default_caps with
      needs_root = false;
      supports_faults = false;
      supports_reliable = false;
      fixed_family = true;
      supports_adaptive = false;
    }

  (* The hybrid's communication on G_n: it spends at most twice the
     cheaper branch, whose own constants differ (DFS ~ 4E, MST_centr
     ~ nV) — so the min's arms carry their constants, or the fit sees
     a phantom slope through the crossover. The run reports no
     meaningful completion time, so no time claim. *)
  let claimed =
    [ Claim.comm ~regime:"the G_n(x) family" "min(8 * E, 2 * n * V)" ]

  let make_engine = no_engine

  (* The run ignores [cfg.graph]'s topology: G_n is rebuilt from its
     size parameters ([fixed_family]). *)
  let params cfg =
    let n = max 4 (G.n cfg.Run.graph) in
    let x = max 2 (G.max_weight cfg.Run.graph) in
    (n, x)

  let run cfg =
    let n, x = params cfg in
    let r = Lower_bound.run_on_gn ~n ~x in
    outcome ~name
      ~measures:
        { Measures.comm = r.Lower_bound.hybrid_comm; time = 0.0; messages = 0 }
      ~info:
        [
          ("n", string_of_int r.Lower_bound.n);
          ("x", string_of_int r.Lower_bound.x);
          ("script_e", string_of_int r.Lower_bound.script_e);
          ("n_times_v", string_of_int r.Lower_bound.n_times_v);
          ("flood_comm", string_of_int r.Lower_bound.flood_comm);
          ("dfs_comm", string_of_int r.Lower_bound.dfs_comm);
          ("hybrid_comm", string_of_int r.Lower_bound.hybrid_comm);
        ]
      (Outcome.Gn_bounds r)

  let invariant _cfg (o : Outcome.t) =
    match o.Outcome.payload with
    | Outcome.Gn_bounds r ->
      let gn = Csap_graph.Generators.lower_bound_gn r.Lower_bound.n
          ~x:r.Lower_bound.x
      in
      if r.Lower_bound.script_e <> G.total_weight gn then
        Error "script-E does not match the generated family"
      else if
        r.Lower_bound.n_times_v
        <> r.Lower_bound.n * Csap_graph.Mst.weight gn
      then Error "n x script-V does not match the generated family"
      else if
        r.Lower_bound.flood_comm <= 0
        || r.Lower_bound.dfs_comm <= 0
        || r.Lower_bound.hybrid_comm <= 0
      then Error "a protocol reported zero communication"
      else if r.Lower_bound.flood_comm > 2 * r.Lower_bound.script_e then
        Error "flood exceeded 2 script-E"
      else Ok ()
    | _ -> Error "unexpected payload"
end

(* ------------------------------------------------------------------ *)
(* The registry.                                                       *)
(* ------------------------------------------------------------------ *)

let registry : entry list =
  [
    (module Flood_p);
    (module Dfs_p);
    (module Con_hybrid_p);
    (module Mst_centr_p);
    (module Mst_ghs_p);
    (module Mst_fast_p);
    (module Mst_hybrid_p);
    (module Spt_centr_p);
    (module Spt_synch_p);
    (module Spt_recur_p);
    (module Spt_hybrid_p);
    (module Spt_async_p);
    (module Slt_dist_p);
    (module Global_sum_p);
    (module Clock_alpha_p);
    (module Clock_beta_p);
    (module Clock_gamma_p);
    (module Sync_alpha_p);
    (module Sync_beta_p);
    (module Sync_gamma_p);
    (module Lower_bound_p);
  ]

let names () = List.map (fun (module P : S) -> P.name) registry

let find name =
  List.find_opt (fun (module P : S) -> P.name = name) registry

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    invalid_arg
      (Printf.sprintf "Protocol.find_exn: unknown protocol %S" name)

(* Capability rejections name the offending knob — "<name>: <knob>:
   <reason>" — uniformly, so a farm cell or CLI user can map the error
   straight back to the flag that caused it. *)
let reject_knob name ~knob reason =
  invalid_arg (Printf.sprintf "%s: %s: %s" name knob reason)

let adaptive_of cfg =
  match cfg.Run.adversary with
  | Some (Csap_dsim.Adversary.Adaptive _) -> true
  | Some (Csap_dsim.Adversary.Oblivious _) | None -> false

let validate (module P : S) cfg =
  let n = G.n cfg.Run.graph in
  if P.caps.needs_root && (cfg.Run.root < 0 || cfg.Run.root >= n) then
    invalid_arg
      (Printf.sprintf "%s: root %d out of range [0, %d)" P.name cfg.Run.root
         n);
  if cfg.Run.faults <> None && not P.caps.supports_faults then
    invalid_arg (Printf.sprintf "%s: fault plans not supported" P.name);
  if cfg.Run.reliable && not P.caps.supports_reliable then
    invalid_arg
      (Printf.sprintf "%s: reliable transport not supported" P.name);
  (match cfg.Run.adversary with
  | None -> ()
  | Some adv ->
    if cfg.Run.delay <> None then
      reject_knob P.name ~knob:"adversary"
        "conflicts with an explicit delay model";
    if Csap_dsim.Adversary.is_adaptive adv && not P.caps.supports_adaptive
    then
      reject_knob P.name ~knob:"adversary" "adaptive adversaries not supported");
  match cfg.Run.domains with
  | None -> ()
  | Some d ->
    if d < 1 then
      invalid_arg (Printf.sprintf "%s: domains %d < 1" P.name d);
    if d > 1 then begin
      if not P.caps.supports_domains then
        reject_knob P.name ~knob:"domains"
          "partitioned execution not supported";
      if cfg.Run.faults <> None || cfg.Run.reliable then
        reject_knob P.name ~knob:"domains"
          "partitioned execution excludes faults/reliable transport";
      if cfg.Run.trace <> None then
        reject_knob P.name ~knob:"domains"
          "partitioned execution cannot record traces";
      if adaptive_of cfg then
        reject_knob P.name ~knob:"adversary"
          "partitioned execution requires an oblivious (order-independent) \
           adversary";
      match cfg.Run.delay with
      | Some dl when not (Delay.order_independent dl) ->
        reject_knob P.name ~knob:"domains"
          "partitioned execution requires an order-independent delay model"
      | _ -> ()
    end

let execute ((module P : S) as entry) cfg =
  validate entry cfg;
  (* An oblivious adversary is just a delay model: fold it into
     [cfg.delay] (validation guaranteed the slot is free). An adaptive
     one is installed as the ambient adversary for the scope of the run,
     so engines the protocol builds internally pick it up — the same
     mechanism as the ambient trace collector. *)
  let cfg, in_scope =
    match cfg.Run.adversary with
    | None -> (cfg, fun f -> f ())
    | Some (Csap_dsim.Adversary.Oblivious d) ->
      ({ cfg with Run.delay = Some d; adversary = None }, fun f -> f ())
    | Some (Csap_dsim.Adversary.Adaptive a) ->
      (cfg, fun f -> Csap_dsim.Adversary.with_ambient a f)
  in
  in_scope (fun () ->
      match cfg.Run.trace with
      | None -> P.run cfg
      | Some prefix ->
        let o, traces =
          Csap_dsim.Trace.with_collector (fun () -> P.run cfg)
        in
        List.iteri
          (fun i tr ->
            Csap_dsim.Trace.save_jsonl tr
              (Printf.sprintf "%s--%s--%d.jsonl" prefix P.name i))
          traces;
        o)

let run ?root ?delay ?adversary ?faults ?reliable ?trace ?engine ?pulses
    ?strip ?k ?q ?domains entry graph =
  execute entry
    (Run.make ?root ?delay ?adversary ?faults ?reliable ?trace ?engine
       ?pulses ?strip
       ?k ?q ?domains graph)
