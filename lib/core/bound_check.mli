(** The bound checker's sweep harness (figure BD, [csap_cli bounds]).

    For every registry entry this module fixes a deterministic graph
    family sweep, runs the protocol once per instance (clean run,
    exact delays), and fits the measured communication and time
    against each of the entry's {!Protocol.Claim.t} expressions with
    {!Bound.check}. Bench figure BD, the [bounds] CLI subcommand and
    the test suite all go through the same [measure]/[check_entry]
    path, so their reported measures are bit-identical. *)

(** One sweep instance: the graph's measured parameters and the
    protocol's measured costs on it. *)
type sample = {
  label : string;  (** family instance, e.g. ["grid 6x6"] *)
  params : Csap_graph.Params.t;
  measures : Measures.t;
}

type claim_verdict = {
  claim : Protocol.Claim.t;
  verdict : Bound.verdict;
}

type report = {
  name : string;  (** protocol name *)
  family : string;
  samples : sample list;
  claims : claim_verdict list;
}

val sweep : Protocol.entry -> string * (string * Csap_graph.Graph.t) list
(** The family label and the labelled instances figure BD sweeps this
    entry over — deterministic, sized to the entry's own cost. *)

val measure : Protocol.entry -> Csap_graph.Graph.t -> sample
(** One clean {!Protocol.execute} run with default knobs; the sample's
    parameters are those of the graph the protocol actually measured
    (for [fixed_family] entries, the rebuilt family, not the size
    carrier passed in). *)

val check_entry : ?slope_tol:float -> Protocol.entry -> report
(** Sweep, measure, and fit every declared claim. *)

val check_all : ?slope_tol:float -> unit -> report list
(** {!check_entry} over the whole registry, in registry order. *)

val failures : report -> claim_verdict list
(** The claims whose verdict is not [within]. *)

val pp_report : Format.formatter -> report -> unit
