(** The bound checker's sweep harness (figure BD, [csap_cli bounds]).

    For every registry entry this module fixes a deterministic graph
    family sweep, runs the protocol once per instance (clean run,
    exact delays), and fits the measured communication and time
    against each of the entry's {!Protocol.Claim.t} expressions with
    {!Bound.check}. Bench figure BD, the [bounds] CLI subcommand and
    the test suite all go through the same [measure]/[check_entry]
    path, so their reported measures are bit-identical. *)

(** One sweep instance: the graph's measured parameters and the
    protocol's measured costs on it. *)
type sample = {
  label : string;  (** family instance, e.g. ["grid 6x6"] *)
  params : Csap_graph.Params.t;
  measures : Measures.t;
}

type claim_verdict = {
  claim : Protocol.Claim.t;
  verdict : Bound.verdict;
}

(** The adversary regime the measures were taken under. [Clean] is one
    exact-delay run per instance — the gating fit. The worst-case
    regimes take per-metric maxima over a battery ([Sched_worst]: the
    oblivious schedule battery; [Adaptive_worst]: the adaptive
    built-ins, {!Csap_dsim.Adversary}) — the sharper check of the
    paper's worst-case claims, reported but not gated because the
    batteries are heuristic under-approximations of the true sup. *)
type regime = Clean | Sched_worst | Adaptive_worst

val regime_name : regime -> string
(** ["clean"], ["sched-worst"], ["adaptive-worst"]. *)

type report = {
  name : string;  (** protocol name *)
  family : string;
  regime : regime;
  samples : sample list;
  claims : claim_verdict list;
}

val sweep : Protocol.entry -> string * (string * Csap_graph.Graph.t) list
(** The family label and the labelled instances figure BD sweeps this
    entry over — deterministic, sized to the entry's own cost. *)

val measure : Protocol.entry -> Csap_graph.Graph.t -> sample
(** One clean {!Protocol.execute} run with default knobs; the sample's
    parameters are those of the graph the protocol actually measured
    (for [fixed_family] entries, the rebuilt family, not the size
    carrier passed in). *)

val check_entry : ?slope_tol:float -> Protocol.entry -> report
(** Sweep, measure, and fit every declared claim ([Clean] regime). *)

val check_entry_regime :
  ?slope_tol:float -> regime:regime -> Protocol.entry -> report
(** Like {!check_entry} but measuring under the regime's adversary
    battery, taking per-metric maxima per instance. Worst-case regimes
    sweep the small grid tier (the battery multiplies per-instance
    cost). *)

val check_all : ?slope_tol:float -> unit -> report list
(** {!check_entry} over the whole registry, in registry order. *)

val regime_roster : unit -> Protocol.entry list
(** The worst-case roster: one cheap registry target per trade-off
    family (flood, GHS, both SPT constructions, synchronizer alpha). *)

val check_regimes : ?slope_tol:float -> unit -> report list
(** [Sched_worst] and [Adaptive_worst] reports for every roster entry —
    the non-gating rows of figure BD. *)

val failures : report -> claim_verdict list
(** The claims whose verdict is not [within]. *)

val pp_report : Format.formatter -> report -> unit
