(** Algorithm MST_ghs (Section 8.1) — the Gallager-Humblet-Spira
    distributed minimum spanning tree, analysed under the weighted
    measures.

    Fragments merge level by level; within a fragment, the minimum-weight
    outgoing edge is found by a broadcast (Initiate), per-vertex serial
    scanning of basic edges in increasing weight order (Test/Accept/
    Reject), and a convergecast (Report); fragments combine via
    Connect/ChangeRoot. Distinct weights are obtained with the canonical
    order {!Csap_graph.Graph.compare_edges}.

    Weighted complexity (Lemma 8.1): each non-tree edge is scanned at most
    twice and each tree edge [O(log n)] times, giving
    [O(script-E + script-V log n)] communication; the time complexity is of
    the same order (the algorithm pipelines poorly — the motivation for
    MST_fast). *)

(** Protocol messages (opaque; exposed for embedding). *)
type msg

(** Engine-agnostic protocol core: transmissions go through the injected
    [send], so MST_hybrid can meter them through the {!Controller}. *)
type t

(** [create g ~send ~on_done] allocates the protocol over [g]. [on_done]
    fires when the two core endpoints detect completion. *)
val create :
  Csap_graph.Graph.t ->
  send:(src:int -> dst:int -> msg -> unit) ->
  on_done:(unit -> unit) ->
  t

(** Deliver one message. *)
val handle : t -> me:int -> src:int -> msg -> unit

(** Spontaneous wake-up of a vertex (no-op if already awake). Waking a
    single initiator suffices: Connect and Test messages wake the rest,
    making the execution a diffusing computation. *)
val wake : t -> int -> unit

val finished : t -> bool

(** The MST (Branch edges); valid once [finished]. *)
val mst : t -> Csap_graph.Tree.t

val max_level : t -> int

(** {2 Standalone} *)

type result = {
  mst : Csap_graph.Tree.t;
  measures : Measures.t;
  max_level : int;  (** highest fragment level reached, [<= log2 n] *)
}

(** [run ?delay ?faults g] computes the MST; all vertices wake at time 0
    (the paper's flooding wake-up, whose [O(script-E)] cost is already
    dominated by the scanning term). With [faults], messages run over the
    raw engine: GHS is not loss-tolerant, so a plan that drops messages
    typically deadlocks the run ([failwith] on non-termination). Use
    {!run_reliable} for correctness under faults. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  Csap_graph.Graph.t ->
  result

type reliable_result = {
  result : result;
  retransmissions : int;  (** timeout-driven data retransmissions *)
  restarts : int;  (** crash-restart events observed *)
}

(** [run_reliable ?delay ?faults ?rto ?max_rto ?on_restart g] runs GHS
    through the {!Csap_dsim.Reliable} shim: under any survivable fault
    plan (loss < 1, finite outages and crashes) the computed tree is the
    MST, at the retransmission overhead. The GHS state machine needs no
    crash-specific logic — its state is stable storage under the crash
    model and the shim restores exactly-once FIFO links. *)
val run_reliable :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?rto:float ->
  ?max_rto:float ->
  ?on_restart:(int -> unit) ->
  Csap_graph.Graph.t ->
  reliable_result
