module G = Csap_graph.Graph

type winner =
  | Synch
  | Recur

type result = {
  tree : Csap_graph.Tree.t;
  winner : winner;
  total_comm : int;
  winning_measures : Measures.t;
  epochs : int;
  transport : Csap_dsim.Net.stats;
}

let run ?delay ?faults ?reliable ?k ?strip g ~source =
  if source < 0 || source >= G.n g then
    invalid_arg
      (Printf.sprintf "Spt_hybrid.run: root %d out of range [0, %d)" source
         (G.n g));
  let strip =
    match strip with Some s -> s | None -> Spt_recur.default_strip g
  in
  let total_comm = ref 0 in
  let epochs = ref 0 in
  (* Start the budget at one broadcast's worth so trivial instances finish
     in the first epoch. *)
  let budget = ref (max 16 (2 * G.n g)) in
  let rec loop () =
    incr epochs;
    match
      Spt_synch.try_run ?delay ?faults ?reliable ~comm_budget:!budget ?k g
        ~source
    with
    | Some r ->
      total_comm := !total_comm + r.Spt_synch.measures.Measures.comm;
      {
        tree = r.Spt_synch.tree;
        winner = Synch;
        total_comm = !total_comm;
        winning_measures = r.Spt_synch.measures;
        epochs = !epochs;
        transport = r.Spt_synch.transport;
      }
    | None ->
      total_comm := !total_comm + !budget;
      (match
         Spt_recur.try_run ?delay ?faults ?reliable ~comm_budget:!budget g
           ~source ~strip
       with
      | Some r ->
        total_comm := !total_comm + r.Spt_recur.measures.Measures.comm;
        {
          tree = r.Spt_recur.tree;
          winner = Recur;
          total_comm = !total_comm;
          winning_measures = r.Spt_recur.measures;
          epochs = !epochs;
          transport = r.Spt_recur.transport;
        }
      | None ->
        total_comm := !total_comm + !budget;
        budget := 2 * !budget;
        loop ())
  in
  loop ()
