(** Symbolic cost bounds (the expressions of Figures 1–4).

    The paper states every protocol's communication and time complexity
    as an expression over the weighted network parameters of Section 1.3
    — [script-E], [script-V], [script-D], the neighbour distance [d],
    the maximal weight [W], plus [n] and [log n]. This module makes
    those expressions first-class data: a small AST with a canonical
    form, a parser/printer (so registry entries declare bounds as
    strings, not code), an evaluator against a measured
    {!Csap_graph.Params.t}, and a log-log regression fitter that
    classifies a measured curve as within or over its claimed
    expression across a family-size sweep.

    The checker tests {e growth}, not constants: a claim [E] passes a
    measured curve [2·E] (slope 1) and fails a measured curve [n·E]
    (slope drifts above 1). Constants are still reported — the fitted
    intercept is the log of the hidden constant and [ratio_max] is the
    worst measured/bound quotient over the sweep. *)

(** The paper's parameters. [Dnbr] is the paper's [d] (the largest
    weighted distance between two neighbours); [W] is the maximal edge
    weight. [LogN] is [log2 n]. *)
type var = N | LogN | E | V | D | Dnbr | W

val var_name : var -> string
(** [n], [logn], [E], [V], [D], [d], [W] — the concrete syntax. *)

val all_vars : var list

(** Expression AST. Exponents are numeric literals ([E^1.5]), matching
    the paper's vocabulary; there is no subtraction or division — cost
    bounds are monotone. *)
type expr =
  | Num of float
  | Var of var
  | Add of expr list
  | Mul of expr list
  | Max of expr list
  | Min of expr list
  | Pow of expr * float

(** {2 Canonical form} *)

val canon : expr -> expr
(** Flatten nested [Add]/[Mul]/[Max]/[Min], fold constants, merge like
    terms ([E + 2·E] = [3·E]) and like factors ([E·E] = [E^2]), drop
    units ([+0], [·1], [^1]), deduplicate [Max]/[Min] arms, and sort
    operands under a total order — so two expressions denote the same
    function of the parameters iff (up to the usual caveats of
    commutative float arithmetic) their canonical forms are equal.
    Idempotent: [canon (canon e) = canon e]. *)

val compare_expr : expr -> expr -> int
(** Structural total order (used by {!canon}'s sorting; [Num]s compare
    by value). *)

val equal : expr -> expr -> bool
(** Equality of canonical forms: [equal a b = (compare_expr (canon a)
    (canon b) = 0)]. *)

val vars : expr -> var list
(** The parameters an expression mentions, sorted, without
    duplicates. *)

(** {2 Concrete syntax}

    Grammar: [+] over [*] over [^]; [max(e, e, ...)] and [min(...)]
    are function forms; numeric literals may be floats; parentheses as
    usual. Example: ["E + D * n * logn"], ["min(E, n * V)"],
    ["E^1.5"]. *)

val to_string : expr -> string
(** Prints the {e canonical} form; [of_string (to_string e)] succeeds
    and is {!equal} to [e]. *)

val of_string : string -> (expr, string) result

val of_string_exn : string -> expr
(** Raises [Invalid_argument] with the parse error. *)

val pp : Format.formatter -> expr -> unit

(** {2 Evaluation} *)

val var_value : Csap_graph.Params.t -> var -> float
(** [LogN] evaluates to [log2 (max 2 n)] so it is never zero. *)

val eval : expr -> Csap_graph.Params.t -> float

(** {2 Log-log fitting} *)

(** Ordinary least squares of [log y] on [log x]: [slope] is the
    fitted growth exponent of the measurement against the bound,
    [intercept] the log2 of the hidden constant, [r2] the fraction of
    variance explained, over [points] positive samples. *)
type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  points : int;
}

val loglog_fit : (float * float) list -> fit option
(** [None] when fewer than two positive finite samples remain, or when
    the [x]s have no spread to regress against. *)

(** The claim checker's verdict over a sweep. [within] is the headline:
    the measured curve grows no faster than the claimed expression
    (fitted slope at most [1 + slope_tol]). When the bound barely
    varies across the sweep (spread under 1.5x) the slope is
    meaningless; the checker falls back to requiring the measurement to
    be flat too (spread at most 2x), and says so in [note]. *)
type verdict = {
  within : bool;
  slope : float;  (** [nan] when unfittable *)
  intercept : float;
  r2 : float;
  ratio_max : float;  (** worst measured/bound over the sweep *)
  points : int;
  note : string option;
}

val default_slope_tol : float
(** [0.25]: lower-order terms and sweep noise move a matched curve's
    fitted slope by well under this; a wrong growth class (one extra
    [n] or [E] factor) moves it by far more. *)

val check_points :
  ?slope_tol:float -> (float * float) list -> verdict
(** [check_points samples] with [(bound_value, measured)] pairs. *)

val check :
  ?slope_tol:float ->
  expr ->
  (Csap_graph.Params.t * float) list ->
  verdict
(** [check claim samples] evaluates [claim] on each sample's parameters
    and fits the measured values against it. *)

val pp_verdict : Format.formatter -> verdict -> unit
