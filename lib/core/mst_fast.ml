(* Cold call site of the deprecated tuple [Graph.neighbors]: like
   [Mst_ghs], per-port state is kept aligned with the adjacency rows and
   indexed randomly, which wants the shim's arrays. *)
[@@@alert "-deprecated"]

module Net = Csap_dsim.Net
module G = Csap_graph.Graph
module Tree = Csap_graph.Tree

type key = int * int * int

(* Candidate outgoing edge: its canonical key plus the inner endpoint. *)
type cand = {
  ckey : key;
  inner : int;
}

type msg =
  (* Coordination over the barrier tree. *)
  | Phase_start of int
  | Start_merge of int
  | Finish
  | Barrier_up of { phase : int; stage : int; count : int; no_out : int }
  (* Fragment-internal traffic. *)
  | Scan of { guess : int }
  | Scan_report of { best : cand option; heavier : bool }
  | Select_done of { none_out : bool }
  | F_change_root
  | F_connect
  | F_init of { fid : key }
  (* Probing. *)
  | Probe of { fid : key }
  | Probe_reply of { same : bool }

type probe_state =
  | Unknown
  | Diff_cached  (* outgoing as of this phase *)
  | Same_rejected  (* permanently internal *)

type result = {
  mst : Tree.t;
  measures : Measures.t;
  phases : int;
  scan_rounds : int;
  transport : Net.stats;
}

let run ?delay ?faults ?reliable g =
  let n = G.n g in
  if n < 2 then invalid_arg "Mst_fast.run: n >= 2 required";
  if not (G.is_connected g) then invalid_arg "Mst_fast.run: disconnected";
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let adj v = G.neighbors g v in
  let edge_key v i =
    let u, w, _ = (adj v).(i) in
    (w, min v u, max v u)
  in
  let index_of v u =
    let i = G.neighbor_index g v u in
    assert (i >= 0);
    i
  in
  (* Barrier (coordination) tree: a shallow-light tree rooted at 0. *)
  let btree = (Slt.build g ~root:0).Slt.tree in
  let coordinator = 0 in
  let b_children = Array.init n (fun v -> Tree.children btree v) in
  (* Barrier aggregation compares against subtree sizes: each child sends a
     single aggregate carrying its whole subtree's count. *)
  let b_subtree = Array.make n 1 in
  Array.iter
    (fun v ->
      let rec up v =
        match Tree.parent btree v with
        | Some (p, _) -> b_subtree.(p) <- b_subtree.(p) + 1; up p
        | None -> ()
      in
      up v)
    (Array.init n Fun.id);
  (* --- fragment structure --- *)
  let fid = Array.init n (fun v -> (0, v, v)) in
  let f_parent = Array.make n (-1) in
  let f_children = Array.make n [] in
  (* --- per-phase scan state --- *)
  let probe = Array.init n (fun v -> Array.make (G.degree g v) Unknown) in
  let pending_probes = Array.make n 0 in
  let pending_reports = Array.make n 0 in
  let my_best = Array.make n None in
  let my_heavier = Array.make n false in
  let best_via = Array.make n (-1) in
  (* -1 = own incident edge (stored in own_best_adj), else child vertex *)
  let own_best_adj = Array.make n (-1) in
  let guess = Array.make n 1 in
  (* --- merge state --- *)
  let sent_connect_to = Array.make n (-1) in
  let got_connect_from = Array.init n (fun _ -> Hashtbl.create 2) in
  (* --- barrier state --- *)
  let b_count = Array.make n 0 in
  let b_noout = Array.make n 0 in
  let b_self = Array.make n false in
  let inited = Array.make n false in
  let cur_phase = ref 0 in
  let cur_stage = ref 0 in
  let finished = ref false in
  let phases_run = ref 0 in
  let scan_rounds = ref 0 in
  let send v u m = net.Net.send ~src:v ~dst:u m in

  (* ---------------- barrier machinery ---------------- *)
  let rec barrier_flush v ~phase ~stage =
    (* Forward the aggregate when the whole subtree has contributed. *)
    if b_self.(v) && b_count.(v) = b_subtree.(v) then begin
      ignore stage;
      let count = b_count.(v) and no_out = b_noout.(v) in
      b_count.(v) <- 0;
      b_noout.(v) <- 0;
      b_self.(v) <- false;
      if v = coordinator then coordinator_barrier_done ~phase ~stage ~count ~no_out
      else
        match Tree.parent btree v with
        | Some (p, _) -> send v p (Barrier_up { phase; stage; count; no_out })
        | None -> assert false
    end

  and barrier_contribute v ~phase ~stage ~no_out =
    assert (not b_self.(v));
    b_self.(v) <- true;
    b_count.(v) <- b_count.(v) + 1;
    if no_out then b_noout.(v) <- b_noout.(v) + 1;
    barrier_flush v ~phase ~stage

  and coordinator_barrier_done ~phase ~stage ~count ~no_out =
    assert (count = n);
    if stage = 0 then begin
      (* Selection finished everywhere. *)
      if no_out = n then finish_all ()
      else begin
        assert (no_out = 0);
        cur_stage := 1;
        broadcast_barrier (Start_merge phase)
      end
    end
    else begin
      (* Merging finished everywhere: next phase. *)
      cur_phase := phase + 1;
      cur_stage := 0;
      incr phases_run;
      broadcast_barrier (Phase_start (phase + 1))
    end

  and broadcast_barrier m =
    List.iter (fun c -> send coordinator c m) b_children.(coordinator);
    handle_coordination coordinator m

  and finish_all () =
    finished := true;
    List.iter (fun c -> send coordinator c Finish) b_children.(coordinator)

  (* ---------------- sub-phase A: doubling scan ---------------- *)
  and begin_select v =
    (* Only fragment roots drive the scan. *)
    if f_parent.(v) < 0 then begin
      incr scan_rounds;
      scan_fragment v ~guess:guess.(v)
    end

  and scan_fragment root ~guess:g_val =
    guess.(root) <- g_val;
    start_scan root ~guess:g_val

  and start_scan v ~guess:g_val =
    (* Reset per-round state and fan out to fragment children. *)
    pending_reports.(v) <- List.length f_children.(v);
    my_best.(v) <- None;
    my_heavier.(v) <- false;
    best_via.(v) <- -1;
    own_best_adj.(v) <- -1;
    List.iter (fun c -> send v c (Scan { guess = g_val })) f_children.(v);
    (* Probe eligible edges in parallel. *)
    let to_probe = ref [] in
    Array.iteri
      (fun i (u, w, _) ->
        match probe.(v).(i) with
        | Same_rejected -> ()
        | Diff_cached ->
          (* Known outgoing from an earlier round this phase. *)
          let k = edge_key v i in
          (match my_best.(v) with
          | Some c when compare c.ckey k <= 0 -> ()
          | _ ->
            my_best.(v) <- Some { ckey = k; inner = v };
            own_best_adj.(v) <- i)
        | Unknown ->
          if w <= g_val then to_probe := (i, u) :: !to_probe
          else my_heavier.(v) <- true)
      (adj v);
    pending_probes.(v) <- List.length !to_probe;
    List.iter (fun (_, u) -> send v u (Probe { fid = fid.(v) })) !to_probe;
    maybe_report v

  and maybe_report v =
    if pending_probes.(v) = 0 && pending_reports.(v) = 0 then begin
      if f_parent.(v) < 0 then root_decide v
      else begin
        (match my_best.(v) with
        | Some c when c.inner = v -> best_via.(v) <- -1
        | _ -> ());
        send v f_parent.(v)
          (Scan_report { best = my_best.(v); heavier = my_heavier.(v) })
      end
    end

  and root_decide v =
    match my_best.(v) with
    | Some _ ->
      (* Minimum outgoing edge selected: tell the fragment. *)
      select_done_cascade v ~none_out:false
    | None ->
      if my_heavier.(v) then begin
        guess.(v) <- 2 * guess.(v);
        incr scan_rounds;
        start_scan v ~guess:guess.(v)
      end
      else select_done_cascade v ~none_out:true

  and select_done_cascade v ~none_out =
    List.iter (fun c -> send v c (Select_done { none_out })) f_children.(v);
    barrier_contribute v ~phase:!cur_phase ~stage:0 ~no_out:none_out

  (* ---------------- sub-phase B: merging ---------------- *)
  and begin_merge v =
    if f_parent.(v) < 0 then route_change_root v

  and route_change_root v =
    if best_via.(v) = -1 then begin
      (* v's own incident edge is the fragment's minimum outgoing edge. *)
      let i = own_best_adj.(v) in
      assert (i >= 0);
      let u, _, _ = (adj v).(i) in
      do_connect v u
    end
    else begin
      let child = best_via.(v) in
      (* Reverse the tree edge: v now hangs under the child. *)
      f_children.(v) <- List.filter (fun c -> c <> child) f_children.(v);
      f_parent.(v) <- child;
      f_children.(child) <- v :: f_children.(child);
      send v child F_change_root
    end

  and do_connect v u =
    sent_connect_to.(v) <- u;
    f_parent.(v) <- u;
    (* Always transmit: the other endpoint needs to see the Connect to
       detect mutuality (or to adopt v as a hooked child). *)
    send v u F_connect;
    if Hashtbl.mem got_connect_from.(v) u then resolve_mutual v u

  and resolve_mutual v u =
    (* Both endpoints sent Connect over the same edge: it is the new core;
       the smaller endpoint id becomes the merged fragment's root. *)
    let i = index_of v u in
    let core = edge_key v i in
    if v < u then begin
      f_parent.(v) <- -1;
      if not (List.mem u f_children.(v)) then
        f_children.(v) <- u :: f_children.(v);
      f_init_cascade v ~fid:core
    end
    else begin
      f_parent.(v) <- u;
      f_children.(v) <- List.filter (fun c -> c <> u) f_children.(v)
    end

  and f_init_cascade v ~fid:new_fid =
    inited.(v) <- true;
    fid.(v) <- new_fid;
    (* Stale outgoing knowledge: fragments just merged. *)
    Array.iteri
      (fun i s -> if s = Diff_cached then probe.(v).(i) <- Unknown)
      probe.(v);
    sent_connect_to.(v) <- -1;
    Hashtbl.reset got_connect_from.(v);
    List.iter (fun c -> send v c (F_init { fid = new_fid })) f_children.(v);
    barrier_contribute v ~phase:!cur_phase ~stage:1 ~no_out:false

  (* ---------------- dispatch ---------------- *)
  and handle_coordination v m =
    match m with
    | Phase_start _ ->
      inited.(v) <- false;
      begin_select v
    | Start_merge _ -> begin_merge v
    | Finish -> ()
    | _ -> assert false

  and handle v ~src m =
    match m with
    | Phase_start _ | Start_merge _ | Finish ->
      List.iter (fun c -> send v c m) b_children.(v);
      handle_coordination v m
    | Barrier_up { phase; stage; count; no_out } ->
      b_count.(v) <- b_count.(v) + count;
      b_noout.(v) <- b_noout.(v) + no_out;
      barrier_flush v ~phase ~stage
    | Scan { guess = g_val } -> start_scan v ~guess:g_val
    | Probe { fid = f } ->
      send v src (Probe_reply { same = f = fid.(v) })
    | Probe_reply { same } ->
      let i = index_of v src in
      if same then probe.(v).(i) <- Same_rejected
      else begin
        probe.(v).(i) <- Diff_cached;
        let k = edge_key v i in
        match my_best.(v) with
        | Some c when compare c.ckey k <= 0 -> ()
        | _ ->
          my_best.(v) <- Some { ckey = k; inner = v };
          own_best_adj.(v) <- i;
          best_via.(v) <- -1
      end;
      pending_probes.(v) <- pending_probes.(v) - 1;
      maybe_report v
    | Scan_report { best; heavier } ->
      (match best with
      | Some c ->
        (match my_best.(v) with
        | Some b when compare b.ckey c.ckey <= 0 -> ()
        | _ ->
          my_best.(v) <- Some c;
          best_via.(v) <- src)
      | None -> ());
      if heavier then my_heavier.(v) <- true;
      pending_reports.(v) <- pending_reports.(v) - 1;
      maybe_report v
    | Select_done { none_out } -> select_done_cascade v ~none_out
    | F_change_root -> route_change_root v
    | F_connect ->
      Hashtbl.replace got_connect_from.(v) src ();
      if sent_connect_to.(v) = src then resolve_mutual v src
      else begin
        if not (List.mem src f_children.(v)) then
          f_children.(v) <- src :: f_children.(v);
        (* The merged fragment's F_init may already have swept past v:
           forward the identity to the late-hooking child directly. *)
        if inited.(v) then send v src (F_init { fid = fid.(v) })
      end
    | F_init { fid = new_fid } -> f_init_cascade v ~fid:new_fid
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src m -> handle v ~src m)
  done;
  net.Net.schedule ~delay:0.0 (fun () -> broadcast_barrier (Phase_start 0));
  ignore (net.Net.run ());
  if not !finished then failwith "Mst_fast.run: did not terminate";
  (* The fragment tree is now the MST (single fragment). *)
  let parents = Array.copy f_parent in
  let weights = Array.make n 0 in
  let root = ref (-1) in
  Array.iteri
    (fun v p ->
      if p < 0 then begin
        assert (!root < 0);
        root := v
      end
      else
        match G.edge_between g v p with
        | Some (w, _) -> weights.(v) <- w
        | None -> assert false)
    parents;
  let mst = Tree.of_parents ~root:!root ~parents ~weights in
  {
    mst;
    measures = Measures.of_metrics (net.Net.metrics ());
    phases = !phases_run;
    scan_rounds = !scan_rounds;
    transport = stats ();
  }
