module G = Csap_graph.Graph
module SP = Csap_dsim.Sync_protocol

type state = {
  dist : int;
  parent : int;
}

let protocol ~source =
  {
    SP.init =
      (fun _ ~me ->
        if me = source then { dist = 0; parent = -1 }
        else { dist = max_int; parent = -1 });
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        let announce d =
          List.rev (G.fold_neighbors g me (fun acc u _ _ -> (u, d) :: acc) [])
        in
        if me = source && pulse = 0 then (state, announce 0)
        else begin
          (* A message carrying d over an edge of weight w proposes d + w,
             which equals the arrival pulse; the first one wins. *)
          let best =
            List.fold_left
              (fun acc (src, d) ->
                match G.edge_between g me src with
                | Some (w, _) ->
                  let cand = d + w in
                  (match acc with
                  | Some (bd, _) when bd <= cand -> acc
                  | _ -> Some (cand, src))
                | None -> acc)
              None inbox
          in
          match best with
          | Some (cand, src) when cand < state.dist ->
            ({ dist = cand; parent = src }, announce cand)
          | _ -> (state, [])
        end)
  }

let run_synchronous g ~source =
  let d = Csap_graph.Paths.diameter g in
  let outcome =
    Csap_dsim.Sync_runner.run g (protocol ~source) ~pulses:(d + 1)
  in
  (outcome.Csap_dsim.Sync_runner.states,
   outcome.Csap_dsim.Sync_runner.weighted_comm)

type result = {
  tree : Csap_graph.Tree.t;
  measures : Measures.t;
  proto_comm : int;
  overhead_comm : int;
  transformed_pulses : int;
  transport : Csap_dsim.Net.stats;
}

let tree_of_states g ~source states =
  let n = G.n g in
  let parents = Array.make n (-1) in
  let weights = Array.make n 0 in
  Array.iteri
    (fun v (s : state) ->
      if v <> source then begin
        if s.dist = max_int then
          invalid_arg "Spt_synch: vertex unreached (disconnected graph?)";
        parents.(v) <- s.parent;
        match G.edge_between g v s.parent with
        | Some (w, _) -> weights.(v) <- w
        | None -> assert false
      end)
    states;
  Csap_graph.Tree.of_parents ~root:source ~parents ~weights

let try_run ?delay ?faults ?reliable ?comm_budget ?k g ~source =
  let d = Csap_graph.Paths.diameter g in
  let inner, outcome =
    Synchronizer.run_transformed ?delay ?faults ?reliable ?comm_budget ?k g
      (protocol ~source) ~pulses:(d + 1)
  in
  let complete =
    Array.for_all (fun (s : state) -> s.dist < max_int) inner
  in
  if not complete then None
  else
    let tree = tree_of_states g ~source inner in
    Some
      {
        tree;
        measures = outcome.Synchronizer.total;
        proto_comm = outcome.Synchronizer.proto_comm;
        overhead_comm =
          outcome.Synchronizer.ack_comm + outcome.Synchronizer.control_comm;
        transformed_pulses = outcome.Synchronizer.pulses;
        transport =
          {
            Csap_dsim.Net.retransmissions =
              outcome.Synchronizer.retransmissions;
            restarts = 0;
          };
      }

let run ?delay ?faults ?reliable ?k g ~source =
  match try_run ?delay ?faults ?reliable ?k g ~source with
  | Some r -> r
  | None -> failwith "Spt_synch.run: incomplete (disconnected graph?)"
