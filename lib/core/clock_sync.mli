(** Clock synchronization (Section 3).

    The task: generate at each node a sequence of pulses such that pulse [p]
    at a node is generated causally after all its neighbours generated pulse
    [p-1]. The quality measure is the {e pulse delay} [ER90]: the maximal
    time between two successive pulses at a node. The relevant graph
    parameters are [W] (max edge weight) and [d] (max weighted distance
    between neighbours, [d <= W]).

    Three synchronizers, as in the paper:

    - {b alpha*}: exchange pulse messages with every neighbour directly.
      Pulse delay [Theta(W)] — a single heavy edge stalls both endpoints.
    - {b beta*}: convergecast + broadcast on one global spanning tree with a
      leader. Pulse delay [Theta(script-D)] (tree height both ways).
    - {b gamma*}: a tree edge-cover (Definition 3.1) built from the [AP91]
      partition with [k = log n]; synchronizer beta runs inside every tree,
      then trees wait for their neighbouring trees (alpha among trees).
      Pulse delay [O(d log^2 n)] — within [log^2 n] of the [Omega(d)] lower
      bound, and crucially independent of [W]. *)

type result = {
  pulses : int;  (** pulses each node generated (0 .. pulses) *)
  pulse_times : float array array;  (** [pulse_times.(v).(p)] *)
  max_pulse_delay : float;
      (** max over nodes and pulses [p >= 1] of [t(v,p) - t(v,p-1)] *)
  avg_pulse_delay : float;
  comm_per_pulse : float;  (** weighted communication amortized per pulse *)
  measures : Measures.t;
  transport : Csap_dsim.Net.stats;
}

(** [run_alpha ?delay ?faults ?reliable g ~pulses] runs synchronizer
    alpha*; [~reliable:true] routes pulse traffic through the
    {!Csap_dsim.Reliable} shim. *)
val run_alpha :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  pulses:int ->
  result

(** [run_beta ?delay ?faults ?reliable ?tree g ~pulses] runs synchronizer
    beta* over [tree] (default: a shallow-light tree rooted at a centre
    vertex). *)
val run_beta :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?tree:Csap_graph.Tree.t ->
  Csap_graph.Graph.t ->
  pulses:int ->
  result

(** [run_gamma ?delay ?cover g ~pulses] runs synchronizer gamma* over a tree
    edge-cover (default: {!Csap_cover.Tree_cover.build}).

    [neighbor_phase] (default [true]) controls the paper's second phase
    (alpha among neighbouring trees). Because the tree edge-cover already
    contains, for every edge, a tree spanning both endpoints, the causal
    property holds even without it — the phase is the paper's belt-and-
    braces margin. Setting it to [false] is the ablation measured by bench
    CS: it trades the extra inter-tree traffic against pulse delay. *)
val run_gamma :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?cover:Csap_cover.Tree_cover.t ->
  ?neighbor_phase:bool ->
  Csap_graph.Graph.t ->
  pulses:int ->
  result

(** [check_causality g r] verifies the defining property on a result: for
    every node [v], pulse [p >= 1] of [v] happens no earlier than pulse
    [p-1] of each neighbour (under the simulator's global clock, causal
    order implies time order for the triggering chain; we check the time
    order each synchronizer actually guarantees). *)
val check_causality : Csap_graph.Graph.t -> result -> bool
