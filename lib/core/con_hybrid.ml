module Net = Csap_dsim.Net
module G = Csap_graph.Graph

type winner =
  | Dfs
  | Mst_centr

type result = {
  spanning_tree : Csap_graph.Tree.t;
  winner : winner;
  measures : Measures.t;
  dfs_estimate : int;
  mst_estimate : int;
  transport : Net.stats;
}

type msg =
  | A of Dfs_token.msg
  | B of Centr_growth.msg

let run ?delay ?faults ?reliable g ~root =
  if root < 0 || root >= G.n g then
    invalid_arg
      (Printf.sprintf "Con_hybrid.run: root %d out of range [0, %d)" root
         (G.n g));
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  (* The root's view of each algorithm's spending (W_a, W_b) and the switch
     deciding which one currently holds the permit. *)
  let w_a = ref 0 and w_b = ref 0 in
  let outcome = ref None in
  let dfs = ref None and mst = ref None in
  let permit_dfs () = !outcome = None && !w_a <= !w_b in
  let permit_mst () = !outcome = None && !w_b < !w_a in
  let rebalance () =
    (* Wake whichever algorithm the permit now favours. Suspended resumes
       are root-local: the token / phase commit is parked at the root. *)
    if !outcome = None then begin
      (match !dfs with
      | Some d when permit_dfs () -> Dfs_token.resume d
      | _ -> ());
      match !mst with
      | Some m when permit_mst () -> Centr_growth.resume m
      | _ -> ()
    end
  in
  let dfs_t =
    Dfs_token.create ~net
      ~inject:(fun m -> A m)
      ~root ~may_proceed:permit_dfs
      ~on_root_estimate:(fun est ->
        w_a := est;
        rebalance ())
      ~on_done:(fun () -> if !outcome = None then outcome := Some Dfs)
      ()
  in
  let mst_t =
    Centr_growth.create ~net
      ~inject:(fun m -> B m)
      ~mode:Centr_growth.Mst ~root ~may_proceed:permit_mst
      ~on_root_estimate:(fun est ->
        w_b := est;
        rebalance ())
      ~on_done:(fun () -> if !outcome = None then outcome := Some Mst_centr)
      ()
  in
  dfs := Some dfs_t;
  mst := Some mst_t;
  for v = 0 to G.n g - 1 do
    net.Net.set_handler v (fun ~src m ->
        if !outcome = None then
          match m with
          | A m -> Dfs_token.handle dfs_t ~me:v ~src m
          | B m -> Centr_growth.handle mst_t ~me:v ~src m)
  done;
  Dfs_token.start dfs_t;
  Centr_growth.start mst_t;
  ignore (net.Net.run ());
  match !outcome with
  | None -> failwith "Con_hybrid.run: neither algorithm terminated"
  | Some winner ->
    let spanning_tree =
      match winner with
      | Dfs -> Dfs_token.tree dfs_t
      | Mst_centr -> Centr_growth.tree mst_t
    in
    {
      spanning_tree;
      winner;
      measures = Measures.of_metrics (net.Net.metrics ());
      dfs_estimate = !w_a;
      mst_estimate = !w_b;
      transport = stats ();
    }
