(** Cost-sensitive complexity measures (Section 1.3).

    The communication complexity of an execution is the sum of [w(e)] over
    all messages sent; the time complexity is the physical time of the last
    message delivery under delays bounded by the edge weights (local timers
    firing after the last delivery are free, like all local computation). *)

type t = {
  comm : int;  (** weighted communication: sum of w(e) per message *)
  time : float;  (** physical completion time *)
  messages : int;  (** raw message count *)
}

val zero : t

val of_metrics : Csap_dsim.Metrics.t -> t

(** Pointwise sum (for protocols composed of stages). *)
val add : t -> t -> t

(** [ratio ~measured ~bound] is measured/bound, with degenerate bounds
    (zero, negative or NaN) mapped to [nan]. Used by the benchmark
    tables. *)
val ratio : measured:float -> bound:float -> float

val pp : Format.formatter -> t -> unit
