module Engine = Csap_dsim.Engine
module Net = Csap_dsim.Net
module G = Csap_graph.Graph

type result = {
  tree : Csap_graph.Tree.t;
  arrival : float array;
  measures : Measures.t;
}

type msg = Wave

type engine = msg Engine.t

let make_engine ?delay g = Engine.create ?delay g

let run ?delay ?faults ?engine g ~source =
  let n = G.n g in
  let eng =
    match engine with
    | None -> Engine.create ?delay ?faults g
    | Some eng ->
      if G.id (Engine.graph eng) <> G.id g then
        invalid_arg "Flood.run: engine built over a different graph";
      Engine.reset ?delay ?faults eng;
      eng
  in
  let parent = Array.make n (-1) in
  let parent_w = Array.make n 0 in
  let reached = Array.make n false in
  let arrival = Array.make n infinity in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then Engine.send eng ~src:v ~dst:u Wave)
  in
  for v = 0 to n - 1 do
    Engine.set_handler eng v (fun ~src Wave ->
        if not reached.(v) then begin
          reached.(v) <- true;
          arrival.(v) <- Engine.now eng;
          parent.(v) <- src;
          (match G.edge_between g v src with
          | Some (w, _) -> parent_w.(v) <- w
          | None -> assert false);
          forward v ~except:src
        end)
  done;
  Engine.schedule eng ~delay:0.0 (fun () ->
      reached.(source) <- true;
      arrival.(source) <- 0.0;
      forward source ~except:(-1));
  ignore (Engine.run eng);
  if not (Array.for_all Fun.id reached) then
    invalid_arg "Flood.run: graph is disconnected";
  let tree =
    Csap_graph.Tree.of_parents ~root:source ~parents:parent ~weights:parent_w
  in
  (* The broadcast completes when the last vertex is reached; duplicate
     copies still in flight afterwards cost communication but not time. *)
  let completion = Array.fold_left Float.max 0.0 arrival in
  let measures =
    { (Measures.of_metrics (Engine.metrics eng)) with Measures.time = completion }
  in
  { tree; arrival; measures }

(* The same wave on the partitioned engine: identical handler logic, so
   bit-identity with [run] follows from Pengine's order guarantee. The
   per-vertex arrays are safe to share unlocked — vertex [v]'s slots are
   written only inside [v]'s handler, which runs on [v]'s owning domain,
   and read by the caller only after [Pengine.run] joins. *)
let run_partitioned ?delay ?partition ~domains g ~source =
  let module P = Csap_dsim.Pengine in
  let n = G.n g in
  let eng = P.create ?delay ?partition ~domains g in
  let parent = Array.make n (-1) in
  let parent_w = Array.make n 0 in
  let reached = Array.make n false in
  let arrival = Array.make n infinity in
  let forward ctx v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then P.send ctx ~src:v ~dst:u Wave)
  in
  for v = 0 to n - 1 do
    P.set_handler eng v (fun ctx ~src Wave ->
        if not reached.(v) then begin
          reached.(v) <- true;
          arrival.(v) <- P.now ctx;
          parent.(v) <- src;
          (match G.edge_between g v src with
          | Some (w, _) -> parent_w.(v) <- w
          | None -> assert false);
          forward ctx v ~except:src
        end)
  done;
  P.schedule eng ~vertex:source ~delay:0.0 (fun ctx ->
      reached.(source) <- true;
      arrival.(source) <- 0.0;
      forward ctx source ~except:(-1));
  ignore (P.run eng);
  if not (Array.for_all Fun.id reached) then
    invalid_arg "Flood.run_partitioned: graph is disconnected";
  let tree =
    Csap_graph.Tree.of_parents ~root:source ~parents:parent ~weights:parent_w
  in
  let completion = Array.fold_left Float.max 0.0 arrival in
  let measures =
    { (Measures.of_metrics (P.metrics eng)) with Measures.time = completion }
  in
  { tree; arrival; measures }

type reliable_result = {
  result : result;
  retransmissions : int;
  restarts : int;
}

(* The same wave, through the reliable-delivery shim: correct under any
   survivable fault plan (loss < 1, finite outages/crashes) because the
   shim restores the exactly-once FIFO links the plain run assumes. The
   wave state lives in stable storage — a crashed vertex keeps what it
   learned, and [on_restart] (here: a restart counter plus an optional
   caller hook) only rebuilds volatile state. Resetting [reached] instead
   would be unsound: copies delivered before the crash are never
   redelivered, and re-parenting on a late copy could close a cycle. *)
let run_reliable ?delay ?faults ?rto ?max_rto ?on_restart g ~source =
  let n = G.n g in
  let net = Net.reliable ?delay ?faults ?rto ?max_rto g in
  let parent = Array.make n (-1) in
  let parent_w = Array.make n 0 in
  let reached = Array.make n false in
  let arrival = Array.make n infinity in
  let restarts = ref 0 in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then net.Net.send ~src:v ~dst:u Wave)
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src Wave ->
        if not reached.(v) then begin
          reached.(v) <- true;
          arrival.(v) <- net.Net.now ();
          parent.(v) <- src;
          (match G.edge_between g v src with
          | Some (w, _) -> parent_w.(v) <- w
          | None -> assert false);
          forward v ~except:src
        end);
    net.Net.set_on_restart v (fun () ->
        incr restarts;
        match on_restart with Some f -> f v | None -> ())
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      reached.(source) <- true;
      arrival.(source) <- 0.0;
      forward source ~except:(-1));
  ignore (net.Net.run ());
  if not (Array.for_all Fun.id reached) then
    invalid_arg "Flood.run_reliable: wave did not cover the graph";
  let tree =
    Csap_graph.Tree.of_parents ~root:source ~parents:parent ~weights:parent_w
  in
  let completion = Array.fold_left Float.max 0.0 arrival in
  let measures =
    {
      (Measures.of_metrics (net.Net.metrics ())) with
      Measures.time = completion;
    }
  in
  {
    result = { tree; arrival; measures };
    retransmissions = net.Net.retransmissions ();
    restarts = !restarts;
  }
