module Net = Csap_dsim.Net
module G = Csap_graph.Graph

type mode =
  | Mst
  | Spt

(* A candidate edge (y, x) from tree vertex y to outside vertex x. [key] is
   the selection order: canonical edge order for Prim, tentative distance
   for Dijkstra. *)
type candidate = {
  key : int * int * int;
  x : int;
  y : int;
  w : int;
  label : int;  (* dist(root, x) in SPT mode *)
}

type msg =
  | Request
  | Report of candidate option
  | Add of candidate
  | Invite of { members : int list; cand : candidate }
  | Joined

type 'm t = {
  net : 'm Net.t;
  inject : msg -> 'm;
  mode : mode;
  root : int;
  may_proceed : unit -> bool;
  on_root_estimate : int -> unit;
  on_done : unit -> unit;
  (* Per-vertex views of the growing tree (full-information invariant). *)
  in_tree : bool array;
  members : bool array array;  (* members.(v) is v's own copy *)
  children : int list array;
  parent : int array;
  parent_w : int array;
  dist : int array;  (* SPT labels; 0 for MST mode *)
  (* Phase-local convergecast state. *)
  pending : int array;
  best : candidate option array;
  mutable tree_size : int;
  mutable tree_weight : int;
  mutable spend : int;  (* root's estimate of communication spent *)
  mutable pending_commit : candidate option;
  mutable suspended : bool;
  mutable finished : bool;
  mutable phases : int;
}

let create ~net ~inject ~mode ~root ?(may_proceed = fun () -> true)
    ?(on_root_estimate = fun _ -> ()) ~on_done () =
  let n = G.n net.Net.graph in
  {
    net;
    inject;
    mode;
    root;
    may_proceed;
    on_root_estimate;
    on_done;
    in_tree = Array.make n false;
    members = Array.init n (fun _ -> [||]);
    children = Array.make n [];
    parent = Array.make n (-1);
    parent_w = Array.make n 0;
    dist = Array.make n 0;
    pending = Array.make n 0;
    best = Array.make n None;
    tree_size = 0;
    tree_weight = 0;
    spend = 0;
    pending_commit = None;
    suspended = false;
    finished = false;
    phases = 0;
  }

let send t ~src ~dst m = t.net.Net.send ~src ~dst (t.inject m)

let better a b =
  match (a, b) with
  | None, c | c, None -> c
  | Some ca, Some cb -> if compare ca.key cb.key <= 0 then a else b

(* v's own candidate: its best incident edge leaving the tree, according to
   its view of the member set. *)
let own_candidate t v =
  let g = t.net.Net.graph in
  G.fold_neighbors g v
    (fun acc u w _ ->
      if t.members.(v).(u) then acc
      else
        let cand =
          match t.mode with
          | Mst -> { key = (w, min v u, max v u); x = u; y = v; w; label = 0 }
          | Spt ->
            let d = t.dist.(v) + w in
            { key = (d, u, v); x = u; y = v; w; label = d }
        in
        better acc (Some cand))
    None

let rec report_up t v =
  let combined = better t.best.(v) (own_candidate t v) in
  if v = t.root then begin
    (* Selection at the root. *)
    match combined with
    | None ->
      (* Connected graphs always yield a candidate while the tree is
         incomplete; reaching here means the graph was disconnected. *)
      failwith "Centr_growth: no outgoing edge (disconnected graph?)"
    | Some cand ->
      t.pending_commit <- Some cand;
      t.spend <- t.spend + (3 * t.tree_weight) + cand.w;
      t.on_root_estimate t.spend;
      if t.may_proceed () then begin
        let c = Option.get t.pending_commit in
        t.pending_commit <- None;
        commit t c
      end
      else t.suspended <- true
  end
  else send t ~src:v ~dst:t.parent.(v) (Report combined)

and commit t cand =
  t.phases <- t.phases + 1;
  (* Broadcast the new edge over the tree; every member updates its view,
     and the boundary vertex y invites x. *)
  apply_add t t.root cand;
  List.iter (fun c -> send t ~src:t.root ~dst:c (Add cand)) t.children.(t.root)

and apply_add t v cand =
  t.members.(v).(cand.x) <- true;
  if v = cand.y then begin
    t.children.(v) <- cand.x :: t.children.(v);
    let member_list = ref [] in
    Array.iteri
      (fun u m -> if m then member_list := u :: !member_list)
      t.members.(v);
    send t ~src:v ~dst:cand.x (Invite { members = !member_list; cand })
  end

and start_phase t =
  if t.tree_size >= G.n (t.net.Net.graph) then begin
    t.finished <- true;
    t.on_done ()
  end
  else begin
    (* Broadcast Request; the root waits for its children like everyone. *)
    t.pending.(t.root) <- List.length t.children.(t.root);
    t.best.(t.root) <- None;
    if t.pending.(t.root) = 0 then report_up t t.root
    else
      List.iter
        (fun c -> send t ~src:t.root ~dst:c Request)
        t.children.(t.root)
  end

let handle t ~me ~src msg =
  match msg with
  | Request ->
    t.pending.(me) <- List.length t.children.(me);
    t.best.(me) <- None;
    if t.pending.(me) = 0 then report_up t me
    else List.iter (fun c -> send t ~src:me ~dst:c Request) t.children.(me)
  | Report cand ->
    ignore src;
    t.best.(me) <- better t.best.(me) cand;
    t.pending.(me) <- t.pending.(me) - 1;
    assert (t.pending.(me) >= 0);
    if t.pending.(me) = 0 then report_up t me
  | Add cand ->
    apply_add t me cand;
    List.iter (fun c -> send t ~src:me ~dst:c (Add cand)) t.children.(me)
  | Invite { members; cand } ->
    (* [me] = cand.x joins the tree. *)
    t.in_tree.(me) <- true;
    let n = G.n (t.net.Net.graph) in
    t.members.(me) <- Array.make n false;
    List.iter (fun u -> t.members.(me).(u) <- true) members;
    t.members.(me).(me) <- true;
    t.parent.(me) <- cand.y;
    t.parent_w.(me) <- cand.w;
    t.dist.(me) <- cand.label;
    send t ~src:me ~dst:cand.y Joined
  | Joined ->
    ignore src;
    if me = t.root then begin
      t.tree_size <- t.tree_size + 1;
      (match t.pending_commit with
      | Some _ -> assert false
      | None -> ());
      (* The root learns the new weight exactly. *)
      t.tree_weight <-
        (let w = ref 0 in
         Array.iteri (fun v p -> if p >= 0 && v <> t.root then w := !w + t.parent_w.(v))
           t.parent;
         !w);
      start_phase t
    end
    else send t ~src:me ~dst:t.parent.(me) Joined

let start t =
  t.net.Net.schedule ~delay:0.0 (fun () ->
      let n = G.n (t.net.Net.graph) in
      t.in_tree.(t.root) <- true;
      t.members.(t.root) <- Array.make n false;
      t.members.(t.root).(t.root) <- true;
      t.tree_size <- 1;
      t.dist.(t.root) <- 0;
      start_phase t)

let resume t =
  if t.suspended then begin
    t.suspended <- false;
    match t.pending_commit with
    | Some cand ->
      t.pending_commit <- None;
      commit t cand
    | None -> ()
  end

let finished t = t.finished

let tree t =
  if not t.finished then failwith "Centr_growth.tree: not finished";
  Csap_graph.Tree.of_parents ~root:t.root ~parents:t.parent
    ~weights:t.parent_w

let root_estimate t = t.spend

let distances t = Array.copy t.dist

type result = {
  grown_tree : Csap_graph.Tree.t;
  measures : Measures.t;
  phases : int;
  transport : Net.stats;
}

let run mode ?delay ?faults ?reliable g ~root =
  if root < 0 || root >= G.n g then
    invalid_arg
      (Printf.sprintf "Centr_growth.run: root %d out of range [0, %d)" root
         (G.n g));
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let t =
    create ~net ~inject:Fun.id ~mode ~root ~on_done:(fun () -> ()) ()
  in
  for v = 0 to G.n g - 1 do
    net.Net.set_handler v (fun ~src m -> handle t ~me:v ~src m)
  done;
  start t;
  ignore (net.Net.run ());
  if not (finished t) then failwith "Centr_growth.run: did not terminate";
  {
    grown_tree = tree t;
    measures = Measures.of_metrics (net.Net.metrics ());
    phases = t.phases;
    transport = stats ();
  }

let run_mst ?delay ?faults ?reliable g ~root =
  run Mst ?delay ?faults ?reliable g ~root

let run_spt ?delay ?faults ?reliable g ~root =
  run Spt ?delay ?faults ?reliable g ~root
