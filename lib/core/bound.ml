module P = Csap_graph.Params

type var = N | LogN | E | V | D | Dnbr | W

let var_name = function
  | N -> "n"
  | LogN -> "logn"
  | E -> "E"
  | V -> "V"
  | D -> "D"
  | Dnbr -> "d"
  | W -> "W"

let all_vars = [ N; LogN; E; V; D; Dnbr; W ]

let var_index = function
  | N -> 0
  | LogN -> 1
  | E -> 2
  | V -> 3
  | D -> 4
  | Dnbr -> 5
  | W -> 6

type expr =
  | Num of float
  | Var of var
  | Add of expr list
  | Mul of expr list
  | Max of expr list
  | Min of expr list
  | Pow of expr * float

(* ------------------------------------------------------------------ *)
(* Total order (for canonical sorting).                                *)
(* ------------------------------------------------------------------ *)

let rec compare_expr a b =
  match (a, b) with
  | Num x, Num y -> Float.compare x y
  | Num _, _ -> -1
  | _, Num _ -> 1
  | Var x, Var y -> Int.compare (var_index x) (var_index y)
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Pow (b1, k1), Pow (b2, k2) -> (
    match compare_expr b1 b2 with
    | 0 -> Float.compare k1 k2
    | c -> c)
  | Pow _, _ -> -1
  | _, Pow _ -> 1
  | Mul xs, Mul ys -> compare_list xs ys
  | Mul _, _ -> -1
  | _, Mul _ -> 1
  | Add xs, Add ys -> compare_list xs ys
  | Add _, _ -> -1
  | _, Add _ -> 1
  | Max xs, Max ys -> compare_list xs ys
  | Max _, _ -> -1
  | _, Max _ -> 1
  | Min xs, Min ys -> compare_list xs ys

and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys -> (
    match compare_expr x y with 0 -> compare_list xs ys | c -> c)

(* ------------------------------------------------------------------ *)
(* Canonical form.                                                     *)
(* ------------------------------------------------------------------ *)

(* A product factor as (base, exponent). *)
let factor_parts = function Pow (b, k) -> (b, k) | e -> (e, 1.0)

(* An additive term as (coefficient, base-factors). The base is the
   factor list of the term's product with the constant stripped, so
   [2 * E * V] and [E * V] merge. *)
let term_parts = function
  | Num c -> (c, [])
  | Mul (Num c :: rest) -> (c, rest)
  | Mul fs -> (1.0, fs)
  | e -> (1.0, [ e ])

let rebuild_term (c, fs) =
  match fs with
  | [] -> Num c
  | [ f ] when c = 1.0 -> f
  | fs when c = 1.0 -> Mul fs
  | fs -> Mul (Num c :: fs)

(* Merge an association list keyed by canonical expressions, combining
   values with [add]; preserves nothing about order (callers sort). *)
let merge_assoc add pairs =
  let rec insert acc (k, v) =
    match acc with
    | [] -> [ (k, v) ]
    | (k', v') :: rest ->
      if compare_expr k k' = 0 then (k', add v v') :: rest
      else (k', v') :: insert rest (k, v)
  in
  List.fold_left insert [] pairs

let rec canon e =
  match e with
  | Num _ | Var _ -> e
  | Pow (b, k) -> canon_pow (canon b) k
  | Add xs -> canon_add (List.map canon xs)
  | Mul xs -> canon_mul (List.map canon xs)
  | Max xs -> canon_choice true (List.map canon xs)
  | Min xs -> canon_choice false (List.map canon xs)

and canon_pow b k =
  if k = 0.0 then Num 1.0
  else if k = 1.0 then b
  else
    match b with
    | Num x -> Num (Float.pow x k)
    | Pow (b', k') -> canon_pow b' (k *. k')
    | Mul fs -> canon_mul (List.map (fun f -> canon_pow f k) fs)
    | _ -> Pow (b, k)

and canon_mul xs =
  (* Flatten nested products, peel the constant, merge like bases. *)
  let xs =
    List.concat_map (function Mul ys -> ys | y -> [ y ]) xs
  in
  let coeff, factors =
    List.fold_left
      (fun (c, fs) x ->
        match x with Num v -> (c *. v, fs) | x -> (c, factor_parts x :: fs))
      (1.0, []) xs
  in
  if coeff = 0.0 then Num 0.0
  else
    let factors =
      merge_assoc ( +. ) (List.rev factors)
      |> List.filter (fun (_, k) -> k <> 0.0)
      |> List.map (fun (b, k) -> canon_pow b k)
      |> List.sort compare_expr
    in
    rebuild_term (coeff, factors)

and canon_add xs =
  let xs =
    List.concat_map (function Add ys -> ys | y -> [ y ]) xs
  in
  let const, terms =
    List.fold_left
      (fun (c, ts) x ->
        match term_parts x with
        | v, [] -> (c +. v, ts)
        | coeff, fs -> (c, (Mul fs, coeff) :: ts))
      (0.0, []) xs
  in
  let terms =
    merge_assoc ( +. ) (List.rev terms)
    |> List.filter (fun (_, c) -> c <> 0.0)
    |> List.map (fun (base, coeff) ->
        let fs = match base with Mul fs -> fs | e -> [ e ] in
        canon_mul (Num coeff :: fs))
    |> List.sort compare_expr
  in
  let parts = (if const = 0.0 then [] else [ Num const ]) @ terms in
  match parts with
  | [] -> Num 0.0
  | [ p ] -> p
  | parts -> Add parts

and canon_choice is_max xs =
  let same = if is_max then function Max ys -> Some ys | _ -> None
    else function Min ys -> Some ys | _ -> None
  in
  let xs =
    List.concat_map (fun x -> match same x with Some ys -> ys | None -> [ x ]) xs
  in
  let pick = if is_max then Float.max else Float.min in
  let consts, rest =
    List.partition_map
      (function Num v -> Left v | e -> Right e)
      xs
  in
  let rest = List.sort_uniq compare_expr rest in
  let parts =
    (match consts with
    | [] -> []
    | c :: cs -> [ Num (List.fold_left pick c cs) ])
    @ rest
  in
  match parts with
  | [] -> invalid_arg "Bound.canon: empty max/min"
  | [ p ] -> p
  | parts -> if is_max then Max parts else Min parts

let equal a b = compare_expr (canon a) (canon b) = 0

let vars e =
  let rec go acc = function
    | Num _ -> acc
    | Var v -> v :: acc
    | Add xs | Mul xs | Max xs | Min xs -> List.fold_left go acc xs
    | Pow (b, _) -> go acc b
  in
  go [] e
  |> List.sort_uniq (fun a b -> Int.compare (var_index a) (var_index b))

(* ------------------------------------------------------------------ *)
(* Printing.                                                           *)
(* ------------------------------------------------------------------ *)

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec pr_add e =
  match e with
  | Add xs -> String.concat " + " (List.map pr_mul xs)
  | _ -> pr_mul e

and pr_mul e =
  match e with
  | Mul xs -> String.concat " * " (List.map pr_pow xs)
  | _ -> pr_pow e

and pr_pow e =
  match e with
  | Pow (b, k) -> pr_atom b ^ "^" ^ float_str k
  | _ -> pr_atom e

and pr_atom e =
  match e with
  | Num f -> float_str f
  | Var v -> var_name v
  | Max xs -> "max(" ^ String.concat ", " (List.map pr_add xs) ^ ")"
  | Min xs -> "min(" ^ String.concat ", " (List.map pr_add xs) ^ ")"
  | _ -> "(" ^ pr_add e ^ ")"

let to_string e = pr_add (canon e)

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ------------------------------------------------------------------ *)
(* Parsing.                                                            *)
(* ------------------------------------------------------------------ *)

type token =
  | Tnum of float
  | Tident of string
  | Tplus
  | Tstar
  | Tcaret
  | Tlpar
  | Trpar
  | Tcomma

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let result = ref None in
  while !result = None && !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '+' then (toks := Tplus :: !toks; incr i)
    else if c = '*' then (toks := Tstar :: !toks; incr i)
    else if c = '^' then (toks := Tcaret :: !toks; incr i)
    else if c = '(' then (toks := Tlpar :: !toks; incr i)
    else if c = ')' then (toks := Trpar :: !toks; incr i)
    else if c = ',' then (toks := Tcomma :: !toks; incr i)
    else if (c >= '0' && c <= '9') || c = '.' || c = '-' then begin
      let start = !i in
      if c = '-' then incr i;
      let prev_exp () =
        !i > start && (s.[!i - 1] = 'e' || s.[!i - 1] = 'E')
      in
      let continue = ref true in
      while !continue && !i < n do
        let c = s.[!i] in
        if (c >= '0' && c <= '9') || c = '.' || c = 'e' || c = 'E'
           || ((c = '+' || c = '-') && prev_exp ())
        then incr i
        else continue := false
      done;
      let lit = String.sub s start (!i - start) in
      match float_of_string_opt lit with
      | Some f -> toks := Tnum f :: !toks
      | None -> result := Some (err "bad number %S at offset %d" lit start)
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
    then begin
      let start = !i in
      let continue = ref true in
      while !continue && !i < n do
        let c = s.[!i] in
        if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
           || (c >= '0' && c <= '9') || c = '_'
        then incr i
        else continue := false
      done;
      toks := Tident (String.sub s start (!i - start)) :: !toks
    end
    else result := Some (err "unexpected character %C at offset %d" c !i)
  done;
  match !result with Some e -> e | None -> Ok (List.rev !toks)

let var_of_name = function
  | "n" -> Some N
  | "logn" -> Some LogN
  | "E" -> Some E
  | "V" -> Some V
  | "D" -> Some D
  | "d" -> Some Dnbr
  | "W" -> Some W
  | _ -> None

exception Parse_error of string

let of_string s =
  match tokenize s with
  | Error e -> Error e
  | Ok toks -> (
    let toks = ref toks in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let advance () = match !toks with [] -> () | _ :: r -> toks := r in
    let expect t what =
      match peek () with
      | Some t' when t' = t -> advance ()
      | _ -> raise (Parse_error (Printf.sprintf "expected %s" what))
    in
    let rec parse_add () =
      let t = parse_mul () in
      let rec more acc =
        match peek () with
        | Some Tplus ->
          advance ();
          more (parse_mul () :: acc)
        | _ -> acc
      in
      match more [ t ] with [ x ] -> x | xs -> Add (List.rev xs)
    and parse_mul () =
      let f = parse_pow () in
      let rec more acc =
        match peek () with
        | Some Tstar ->
          advance ();
          more (parse_pow () :: acc)
        | _ -> acc
      in
      match more [ f ] with [ x ] -> x | xs -> Mul (List.rev xs)
    and parse_pow () =
      let a = parse_atom () in
      match peek () with
      | Some Tcaret -> (
        advance ();
        match peek () with
        | Some (Tnum k) ->
          advance ();
          Pow (a, k)
        | _ -> raise (Parse_error "exponent must be a numeric literal"))
      | _ -> a
    and parse_atom () =
      match peek () with
      | Some (Tnum f) ->
        advance ();
        Num f
      | Some (Tident id) -> (
        advance ();
        match id with
        | "max" | "min" -> (
          expect Tlpar (Printf.sprintf "'(' after %s" id);
          let args = parse_args [ parse_add () ] in
          expect Trpar "')'";
          match args with
          | [ _ ] ->
            raise
              (Parse_error (Printf.sprintf "%s needs at least two arguments" id))
          | args -> if id = "max" then Max args else Min args)
        | _ -> (
          match var_of_name id with
          | Some v -> Var v
          | None ->
            raise
              (Parse_error
                 (Printf.sprintf
                    "unknown parameter %S (know: n logn E V D d W)" id))))
      | Some Tlpar ->
        advance ();
        let e = parse_add () in
        expect Trpar "')'";
        e
      | _ -> raise (Parse_error "expected a number, parameter or '('")
    and parse_args acc =
      match peek () with
      | Some Tcomma ->
        advance ();
        parse_args (parse_add () :: acc)
      | _ -> List.rev acc
    in
    match parse_add () with
    | e ->
      if !toks <> [] then Error "trailing tokens after expression"
      else Ok (canon e)
    | exception Parse_error m -> Error m)

let of_string_exn s =
  match of_string s with
  | Ok e -> e
  | Error m -> invalid_arg (Printf.sprintf "Bound.of_string: %s: %s" s m)

(* ------------------------------------------------------------------ *)
(* Evaluation.                                                         *)
(* ------------------------------------------------------------------ *)

let log2 x = Float.log x /. Float.log 2.0

let var_value (p : P.t) = function
  | N -> float_of_int p.P.n
  | LogN -> log2 (float_of_int (max 2 p.P.n))
  | E -> float_of_int p.P.script_e
  | V -> float_of_int p.P.script_v
  | D -> float_of_int p.P.script_d
  | Dnbr -> float_of_int p.P.d
  | W -> float_of_int p.P.w_max

let rec eval e p =
  match e with
  | Num f -> f
  | Var v -> var_value p v
  | Add xs -> List.fold_left (fun acc x -> acc +. eval x p) 0.0 xs
  | Mul xs -> List.fold_left (fun acc x -> acc *. eval x p) 1.0 xs
  | Max xs ->
    List.fold_left (fun acc x -> Float.max acc (eval x p)) neg_infinity xs
  | Min xs ->
    List.fold_left (fun acc x -> Float.min acc (eval x p)) infinity xs
  | Pow (b, k) -> Float.pow (eval b p) k

(* ------------------------------------------------------------------ *)
(* Log-log regression.                                                 *)
(* ------------------------------------------------------------------ *)

type fit = {
  slope : float;
  intercept : float;
  r2 : float;
  points : int;
}

let positive (x, y) =
  x > 0.0 && y > 0.0 && Float.is_finite x && Float.is_finite y

let loglog_fit samples =
  let pts =
    List.filter_map
      (fun (x, y) ->
        if positive (x, y) then Some (log2 x, log2 y) else None)
      samples
  in
  let n = List.length pts in
  if n < 2 then None
  else begin
    let nf = float_of_int n in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts /. nf in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts /. nf in
    let sxx =
      List.fold_left (fun a (x, _) -> a +. ((x -. sx) *. (x -. sx))) 0.0 pts
    in
    let syy =
      List.fold_left (fun a (_, y) -> a +. ((y -. sy) *. (y -. sy))) 0.0 pts
    in
    let sxy =
      List.fold_left (fun a (x, y) -> a +. ((x -. sx) *. (y -. sy))) 0.0 pts
    in
    if sxx < 1e-12 then None
    else
      let slope = sxy /. sxx in
      let intercept = sy -. (slope *. sx) in
      let r2 = if syy < 1e-12 then 1.0 else sxy *. sxy /. (sxx *. syy) in
      Some { slope; intercept; r2; points = n }
  end

type verdict = {
  within : bool;
  slope : float;
  intercept : float;
  r2 : float;
  ratio_max : float;
  points : int;
  note : string option;
}

let default_slope_tol = 0.25

let unfittable note points =
  {
    within = false;
    slope = nan;
    intercept = nan;
    r2 = nan;
    ratio_max = nan;
    points;
    note = Some note;
  }

let check_points ?(slope_tol = default_slope_tol) samples =
  let pts = List.filter positive samples in
  let points = List.length pts in
  if points < 3 then
    unfittable
      (Printf.sprintf "needs >= 3 positive samples, have %d" points)
      points
  else begin
    let ratio_max =
      List.fold_left (fun a (x, y) -> Float.max a (y /. x)) 0.0 pts
    in
    let fold f init get = List.fold_left (fun a p -> f a (get p)) init pts in
    let xmin = fold Float.min infinity fst
    and xmax = fold Float.max 0.0 fst
    and ymin = fold Float.min infinity snd
    and ymax = fold Float.max 0.0 snd in
    if xmax /. xmin < 1.5 then begin
      (* The claimed bound barely moves over this sweep; a growth
         exponent cannot be estimated. Fall back to demanding the
         measurement be flat as well. *)
      let flat = ymax /. ymin <= 2.0 in
      {
        within = flat;
        slope = nan;
        intercept = nan;
        r2 = nan;
        ratio_max;
        points;
        note =
          Some
            (Printf.sprintf "flat-bound fallback (bound spread %.2fx, \
                             measured spread %.2fx)"
               (xmax /. xmin) (ymax /. ymin));
      }
    end
    else
      match loglog_fit pts with
      | None -> unfittable "degenerate regression" points
      | Some f ->
        {
          within = f.slope <= 1.0 +. slope_tol;
          slope = f.slope;
          intercept = f.intercept;
          r2 = f.r2;
          ratio_max;
          points;
          note = None;
        }
  end

let check ?slope_tol claim samples =
  check_points ?slope_tol
    (List.map (fun (p, y) -> (eval claim p, y)) samples)

let pp_verdict ppf v =
  Format.fprintf ppf "%s slope=%.3f r2=%.3f ratio_max=%.2f pts=%d%s"
    (if v.within then "within" else "OVER")
    v.slope v.r2 v.ratio_max v.points
    (match v.note with None -> "" | Some n -> " (" ^ n ^ ")")
