(** Full-information phased tree growth — the common skeleton of
    MST_centr (Section 6.3, distributed Prim) and SPT_centr (Section 6.4,
    distributed Dijkstra).

    The algorithm grows a tree from a root, one vertex per phase. The
    invariant is that every tree vertex knows the structure of the whole
    tree (hence "full information"): each phase runs a request broadcast and
    a report convergecast over the current tree, the root selects the
    winning candidate edge, broadcasts it (restoring the invariant), the
    boundary vertex invites the new vertex, and an acknowledgement returns
    to the root.

    Per phase this costs [O(w(T))] communication and [O(Diam(T))] time;
    with [n - 1] phases that is [O(n V)] / [O(n Diam(MST))] for MST_centr
    (Corollary 6.4) and [O(n w(SPT))] / [O(n D)] for SPT_centr
    (Corollary 6.6).

    The root knows the exact tree weight at all times (the {e root
    estimate}), which is the suspension handle the hybrid algorithms use. *)

type mode =
  | Mst  (** candidates ordered by canonical edge order — Prim *)
  | Spt  (** candidates ordered by tentative distance — Dijkstra *)

type msg

type 'm t

(** [create ~net ~inject ~mode ~root ...] allocates protocol state over a
    {!Csap_dsim.Net} endpoint.
    [may_proceed] is polled at the root before each phase commits its edge;
    [on_root_estimate] reports the exact projected tree weight (MST mode)
    or cumulative communication spent (both modes grow monotonically). *)
val create :
  net:'m Csap_dsim.Net.t ->
  inject:(msg -> 'm) ->
  mode:mode ->
  root:int ->
  ?may_proceed:(unit -> bool) ->
  ?on_root_estimate:(int -> unit) ->
  on_done:(unit -> unit) ->
  unit ->
  'm t

val handle : 'm t -> me:int -> src:int -> msg -> unit
val start : 'm t -> unit

(** Release a phase suspended by [may_proceed]. *)
val resume : 'm t -> unit

val finished : 'm t -> bool

(** The constructed tree (MST or SPT); valid once [finished]. *)
val tree : 'm t -> Csap_graph.Tree.t

(** Exact weight of the tree built so far, as known at the root. *)
val root_estimate : 'm t -> int

(** Distances from the root (SPT mode; valid once finished). *)
val distances : 'm t -> int array

(** {2 Standalone runners} *)

type result = {
  grown_tree : Csap_graph.Tree.t;
  measures : Measures.t;
  phases : int;
  transport : Csap_dsim.Net.stats;
}

(** [run_mst ?delay ?faults ?reliable g ~root] grows the MST on its own
    transport; [~reliable:true] routes all traffic through the
    {!Csap_dsim.Reliable} shim. Raises [Invalid_argument] when [root] is
    outside [0, n). *)
val run_mst :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  root:int ->
  result

(** As {!run_mst}, for the shortest-path tree. *)
val run_spt :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  Csap_graph.Graph.t ->
  root:int ->
  result
