(** Algorithm SPT_hybrid (Section 9.3).

    Combines SPT_synch ([O(script-E + script-D k n log n)] communication)
    and SPT_recur ([O(script-E^(1+eps))]) so the result is as cheap as the
    cheaper of the two, in the manner of the hybrids of Sections 7-8. Our
    two SPT constructions have no single centre of activity to suspend, so
    the combination is realised with budgeted restarts (the classical
    dovetailing argument behind such minimum-combinations): run one
    algorithm under a communication budget [B], on failure run the other
    under [B], double [B] and repeat. The total spend is at most a constant
    factor above [min] of the two standalone costs. *)

type winner =
  | Synch
  | Recur

type result = {
  tree : Csap_graph.Tree.t;
  winner : winner;
  total_comm : int;  (** across all budget epochs *)
  winning_measures : Measures.t;  (** the successful run's own measures *)
  epochs : int;
  transport : Csap_dsim.Net.stats;  (** from the winning epoch's run *)
}

(** [run ?delay ?faults ?reliable ?k ?strip g ~source]; [k] is gamma_w's
    parameter, [strip] SPT_recur's strip depth (defaults as in the
    component algorithms). Raises [Invalid_argument] when [source] is
    outside [0, n). *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?reliable:bool ->
  ?k:int ->
  ?strip:int ->
  Csap_graph.Graph.t ->
  source:int ->
  result
