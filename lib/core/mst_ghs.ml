(* Cold call site of the deprecated tuple [Graph.neighbors]: the GHS
   state machine keeps per-port arrays aligned with the adjacency rows
   and indexes them randomly, which wants the shim's arrays. *)
[@@@alert "-deprecated"]

module Engine = Csap_dsim.Engine
module G = Csap_graph.Graph

(* Canonical distinct edge identities: the (w, u, v) triple. *)
type key = int * int * int

let inf_key : key = (max_int, max_int, max_int)

type msg =
  | Connect of int  (* level *)
  | Initiate of int * key * bool  (* level, fragment name, find? *)
  | Test of int * key
  | Accept
  | Reject
  | Report of key
  | Change_root

type node_state =
  | Sleeping
  | Find
  | Found

type edge_state =
  | Basic
  | Branch
  | Rejected

type result = {
  mst : Csap_graph.Tree.t;
  measures : Measures.t;
  max_level : int;
}

(* The protocol core is engine-agnostic: transmissions go through an
   injected [send], so the hybrid algorithm can route them through the
   controller. *)
type t = {
  g : G.t;
  send : src:int -> dst:int -> msg -> unit;
  on_done : unit -> unit;
  handle_ : (me:int -> src:int -> msg -> unit);
  wake_ : int -> unit;
  finished_ : unit -> bool;
  mst_ : unit -> Csap_graph.Tree.t;
  max_level_ : unit -> int;
}

let handle t ~me ~src m = t.handle_ ~me ~src m
let wake t v = t.wake_ v
let finished t = t.finished_ ()
let mst t = t.mst_ ()
let max_level t = t.max_level_ ()

let create g ~send:send_fn ~on_done =
  let n = G.n g in
  if n < 2 then invalid_arg "Mst_ghs.create: n >= 2 required";
  if not (G.is_connected g) then invalid_arg "Mst_ghs.create: disconnected";
  (* Per-vertex protocol state; edge state is per adjacency index. *)
  let sn = Array.make n Sleeping in
  let ln = Array.make n 0 in
  let fn = Array.make n inf_key in
  let se = Array.init n (fun v -> Array.make (G.degree g v) Basic) in
  let best_edge = Array.make n (-1) in
  let best_wt = Array.make n inf_key in
  let test_edge = Array.make n (-1) in
  let in_branch = Array.make n (-1) in
  let find_count = Array.make n 0 in
  let version = Array.make n 0 in
  let deferred = Array.init n (fun _ -> Queue.create ()) in
  let max_level = ref 0 in
  let done_flag = ref false in
  let bump v = version.(v) <- version.(v) + 1 in
  let adj v = G.neighbors g v in
  let edge_key v i =
    let u, w, _ = (adj v).(i) in
    (w, min v u, max v u)
  in
  let index_of v u =
    let i = G.neighbor_index g v u in
    assert (i >= 0);
    i
  in
  let send v i m =
    let u, _, _ = (adj v).(i) in
    send_fn ~src:v ~dst:u m
  in
  (* Sorted adjacency order for the serial scan (lightest first). *)
  let scan_order =
    Array.init n (fun v ->
        let idx = Array.init (G.degree g v) Fun.id in
        Array.sort (fun a b -> compare (edge_key v a) (edge_key v b)) idx;
        idx)
  in
  let min_basic v =
    let order = scan_order.(v) in
    let rec scan i =
      if i >= Array.length order then -1
      else if se.(v).(order.(i)) = Basic then order.(i)
      else scan (i + 1)
    in
    scan 0
  in
  let rec wakeup v =
    assert (sn.(v) = Sleeping);
    (* Lightest incident edge becomes a branch; join at level 0. *)
    let m = scan_order.(v).(0) in
    se.(v).(m) <- Branch;
    ln.(v) <- 0;
    sn.(v) <- Found;
    find_count.(v) <- 0;
    bump v;
    send v m (Connect 0)

  and test v =
    let i = min_basic v in
    if i >= 0 then begin
      test_edge.(v) <- i;
      send v i (Test (ln.(v), fn.(v)))
    end
    else begin
      test_edge.(v) <- -1;
      report v
    end

  and report v =
    if find_count.(v) = 0 && test_edge.(v) = -1 then begin
      sn.(v) <- Found;
      bump v;
      send v in_branch.(v) (Report best_wt.(v))
    end

  and change_root v =
    let b = best_edge.(v) in
    if se.(v).(b) = Branch then send v b Change_root
    else begin
      send v b (Connect ln.(v));
      se.(v).(b) <- Branch;
      bump v
    end

  and process v src msg =
    let j = index_of v src in
    match msg with
    | Connect l ->
      if sn.(v) = Sleeping then wakeup v;
      if l < ln.(v) then begin
        (* Absorb the lower-level fragment. *)
        se.(v).(j) <- Branch;
        bump v;
        send v j (Initiate (ln.(v), fn.(v), sn.(v) = Find));
        if sn.(v) = Find then find_count.(v) <- find_count.(v) + 1
      end
      else if se.(v).(j) = Basic then Queue.push (src, msg) deferred.(v)
      else begin
        (* Merge: the shared edge becomes the new core. *)
        send v j (Initiate (ln.(v) + 1, edge_key v j, true))
      end
    | Initiate (l, f, find) ->
      ln.(v) <- l;
      fn.(v) <- f;
      sn.(v) <- (if find then Find else Found);
      in_branch.(v) <- j;
      best_edge.(v) <- -1;
      best_wt.(v) <- inf_key;
      if l > !max_level then max_level := l;
      bump v;
      Array.iteri
        (fun i _ ->
          if i <> j && se.(v).(i) = Branch then begin
            send v i (Initiate (l, f, find));
            if find then find_count.(v) <- find_count.(v) + 1
          end)
        se.(v);
      if find then test v
    | Test (l, f) ->
      if sn.(v) = Sleeping then wakeup v;
      if l > ln.(v) then Queue.push (src, msg) deferred.(v)
      else if f <> fn.(v) then send v j Accept
      else begin
        if se.(v).(j) = Basic then begin
          se.(v).(j) <- Rejected;
          bump v
        end;
        if test_edge.(v) <> j then send v j Reject else test v
      end
    | Accept ->
      test_edge.(v) <- -1;
      let k = edge_key v j in
      if compare k best_wt.(v) < 0 then begin
        best_wt.(v) <- k;
        best_edge.(v) <- j
      end;
      report v
    | Reject ->
      if se.(v).(j) = Basic then begin
        se.(v).(j) <- Rejected;
        bump v
      end;
      test v
    | Report w ->
      if j <> in_branch.(v) then begin
        (* From a child subtree. *)
        find_count.(v) <- find_count.(v) - 1;
        if compare w best_wt.(v) < 0 then begin
          best_wt.(v) <- w;
          best_edge.(v) <- j
        end;
        report v
      end
      else if sn.(v) = Find then Queue.push (src, msg) deferred.(v)
      else if compare w best_wt.(v) > 0 then change_root v
      else if w = inf_key && best_wt.(v) = inf_key then begin
        if not !done_flag then begin
          done_flag := true;
          on_done ()
        end
      end
      (* Otherwise the other core endpoint holds the strictly better edge
         and is the one that performs the change of root. *)
    | Change_root -> change_root v
  in
  let drain v =
    let changed = ref true in
    while !changed do
      changed := false;
      let pending = Queue.length deferred.(v) in
      for _ = 1 to pending do
        let src, msg = Queue.pop deferred.(v) in
        let ver = version.(v) in
        process v src msg;
        if version.(v) <> ver then changed := true
      done
    done
  in
  let extract_mst () =
    if not !done_flag then failwith "Mst_ghs.mst: not finished";
    (* The Branch edges form the MST. *)
    let branch_edges = Hashtbl.create n in
    for v = 0 to n - 1 do
      Array.iteri
        (fun i s ->
          if s = Branch then begin
            let u, w, _ = (adj v).(i) in
            Hashtbl.replace branch_edges (min v u, max v u, w) ()
          end)
        se.(v)
    done;
    let tree_graph =
      G.create ~n
        (Hashtbl.fold (fun (u, v, w) () acc -> (u, v, w) :: acc) branch_edges
           [])
    in
    Csap_graph.Traversal.spanning_tree_dfs tree_graph ~root:0
  in
  {
    g;
    send = send_fn;
    on_done;
    handle_ =
      (fun ~me ~src m ->
        process me src m;
        drain me);
    wake_ = (fun v -> if sn.(v) = Sleeping then wakeup v);
    finished_ = (fun () -> !done_flag);
    mst_ = extract_mst;
    max_level_ = (fun () -> !max_level);
  }

let run ?delay ?faults g =
  let eng = Engine.create ?delay ?faults g in
  let t =
    create g
      ~send:(fun ~src ~dst m -> Engine.send eng ~src ~dst m)
      ~on_done:(fun () -> ())
  in
  for v = 0 to G.n g - 1 do
    Engine.set_handler eng v (fun ~src m -> handle t ~me:v ~src m)
  done;
  Engine.schedule eng ~delay:0.0 (fun () ->
      for v = 0 to G.n g - 1 do
        wake t v
      done);
  ignore (Engine.run eng);
  if not (finished t) then failwith "Mst_ghs.run: did not terminate";
  {
    mst = mst t;
    measures = Measures.of_metrics (Engine.metrics eng);
    max_level = max_level t;
  }

type reliable_result = {
  result : result;
  retransmissions : int;
  restarts : int;
}

(* GHS through the reliable shim. The state machine above assumes
   exactly-once FIFO links — exactly what the shim restores over a
   faulty engine — and all its state is stable storage under the crash
   model, so no crash-specific protocol logic is needed. *)
let run_reliable ?delay ?faults ?rto ?max_rto ?on_restart g =
  let module Net = Csap_dsim.Net in
  let net = Net.reliable ?delay ?faults ?rto ?max_rto g in
  let t =
    create g
      ~send:(fun ~src ~dst m -> net.Net.send ~src ~dst m)
      ~on_done:(fun () -> ())
  in
  let restarts = ref 0 in
  for v = 0 to G.n g - 1 do
    net.Net.set_handler v (fun ~src m -> handle t ~me:v ~src m);
    net.Net.set_on_restart v (fun () ->
        incr restarts;
        match on_restart with Some f -> f v | None -> ())
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to G.n g - 1 do
        wake t v
      done);
  ignore (net.Net.run ());
  if not (finished t) then
    failwith "Mst_ghs.run_reliable: did not terminate";
  {
    result =
      {
        mst = mst t;
        measures = Measures.of_metrics (net.Net.metrics ());
        max_level = max_level t;
      };
    retransmissions = net.Net.retransmissions ();
    restarts = !restarts;
  }
