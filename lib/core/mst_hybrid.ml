module Engine = Csap_dsim.Engine
module G = Csap_graph.Graph

type winner =
  | Ghs
  | Mst_centr

type result = {
  mst : Csap_graph.Tree.t;
  winner : winner;
  measures : Measures.t;
  ghs_demand : int;
  centr_estimate : int;
}

type msg =
  | A of Mst_ghs.msg Controller.wire
  | B of Centr_growth.msg

let run ?delay g ~root =
  let eng = Engine.create ?delay g in
  let w_b = ref 0 in
  let outcome = ref None in
  let ghs_ref = ref None in
  let ctl_ref = ref None in
  let centr_ref = ref None in
  (* GHS runs while its demand does not exceed MST_centr's estimate. *)
  let permit_centr () =
    match !ctl_ref with
    | None -> false
    | Some ctl -> !outcome = None && !w_b < Controller.demand ctl
  in
  let rebalance () =
    if !outcome = None then begin
      (match (!ctl_ref, !centr_ref) with
      | Some ctl, _ when Controller.demand ctl <= !w_b ->
        (* Fund GHS with slack (2x demand) so the controller's root
           padding has headroom and refill chains amortize. *)
        let target = 2 * Controller.demand ctl in
        if target > Controller.threshold ctl then
          Controller.raise_threshold ctl
            (target - Controller.threshold ctl)
      | _ -> ());
      match !centr_ref with
      | Some centr when permit_centr () -> Centr_growth.resume centr
      | _ -> ()
    end
  in
  let ctl =
    Controller.create ~engine:eng
      ~inject:(fun w -> A w)
      ~initiator:root ~threshold:1 ~suspend:true
      ~on_abort:(fun () -> rebalance ())
      ()
  in
  ctl_ref := Some ctl;
  let ghs =
    Mst_ghs.create g
      ~send:(fun ~src ~dst m -> Controller.send ctl ~src ~dst m)
      ~on_done:(fun () -> if !outcome = None then outcome := Some Ghs)
  in
  ghs_ref := Some ghs;
  let centr =
    Centr_growth.create ~net:(Csap_dsim.Net.of_engine eng)
      ~inject:(fun m -> B m)
      ~mode:Centr_growth.Mst ~root ~may_proceed:permit_centr
      ~on_root_estimate:(fun est ->
        w_b := est;
        rebalance ())
      ~on_done:(fun () -> if !outcome = None then outcome := Some Mst_centr)
      ()
  in
  centr_ref := Some centr;
  for v = 0 to G.n g - 1 do
    Engine.set_handler eng v (fun ~src m ->
        if !outcome = None then
          match m with
          | A wire -> (
            match Controller.handle ctl ~me:v ~src wire with
            | Some payload -> Mst_ghs.handle ghs ~me:v ~src payload
            | None -> ())
          | B m -> Centr_growth.handle centr ~me:v ~src m)
  done;
  Engine.schedule eng ~delay:0.0 (fun () -> Mst_ghs.wake ghs root);
  Centr_growth.start centr;
  ignore (Engine.run eng);
  match !outcome with
  | None -> failwith "Mst_hybrid.run: neither algorithm terminated"
  | Some winner ->
    let mst =
      match winner with
      | Ghs -> Mst_ghs.mst ghs
      | Mst_centr -> Centr_growth.tree centr
    in
    {
      mst;
      winner;
      measures = Measures.of_metrics (Engine.metrics eng);
      ghs_demand = Controller.demand ctl;
      centr_estimate = !w_b;
    }
