module Net = Csap_dsim.Net
module G = Csap_graph.Graph

(* Strip-end detection is genuine Dijkstra-Scholten termination detection
   [DS80] over the strip's diffusing computation: every Offer and every
   Strip forward is acknowledged; a vertex closes its engagement (acks its
   DS parent) when it has no outstanding acknowledgements of its own. The
   closing acknowledgements aggregate the count of newly joined vertices,
   so the source learns both "strip finished" and "how many joined" from
   the same cascade - no simulator-level quiescence oracle. *)
type msg =
  | Offer of { value : int; threshold : int }
  | Ack of int  (* aggregated count of newly joined vertices *)
  | Strip of int  (* strip-start broadcast over the partial tree *)

type result = {
  tree : Csap_graph.Tree.t;
  measures : Measures.t;
  strips : int;
  offer_comm : int;
  sync_comm : int;
  transport : Net.stats;
}

let default_strip g =
  let d = Csap_graph.Paths.diameter g in
  let dn = Csap_graph.Paths.max_neighbor_distance g in
  max 1 (int_of_float (sqrt (float_of_int (d * dn))))

let try_run ?delay ?faults ?reliable ?(comm_budget = max_int) g ~source
    ~strip =
  if strip < 1 then invalid_arg "Spt_recur.run: strip >= 1 required";
  let n = G.n g in
  if source < 0 || source >= n then
    invalid_arg
      (Printf.sprintf "Spt_recur.run: root %d out of range [0, %d)" source n);
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let children = Array.make n [] in
  let threshold = Array.make n 0 in
  (* offered.(v).(i): best value already announced over edge i. *)
  let offered = Array.init n (fun v -> Array.make (G.degree g v) max_int) in
  (* Dijkstra-Scholten state. *)
  let deficit = Array.make n 0 in
  let ds_parent = Array.make n (-1) in
  let gathered = Array.make n 0 in
  let self_pending = Array.make n 0 in
  let joined_total = ref 1 in
  let strips = ref 0 in
  let finished = ref false in
  let offer_comm = ref 0 in
  let sync_comm = ref 0 in
  let edge_w v u =
    match G.edge_between g v u with
    | Some (w, _) -> w
    | None -> assert false
  in
  (* Announce every due offer that improves on what was already sent;
     each announcement joins the strip's diffusing computation. *)
  let announce v =
    let i = ref 0 in
    G.iter_neighbors g v (fun u w _ ->
        let slot = !i in
        incr i;
        if dist.(v) < max_int then begin
          let value = dist.(v) + w in
          if value <= threshold.(v) && value < offered.(v).(slot) then begin
            offered.(v).(slot) <- value;
            offer_comm := !offer_comm + w;
            deficit.(v) <- deficit.(v) + 1;
            net.Net.send ~src:v ~dst:u
              (Offer { value; threshold = threshold.(v) })
          end
        end)
  in
  let rec strip_complete () =
    (* The source's engagement closed: the strip's relaxation has quiesced
       everywhere. *)
    joined_total := !joined_total + gathered.(source);
    gathered.(source) <- 0;
    if !joined_total >= n then finished := true
    else if !strips > 4 * n * G.max_weight g then
      failwith "Spt_recur.run: no progress"
    else start_strip ()

  and start_strip () =
    incr strips;
    threshold.(source) <- threshold.(source) + strip;
    broadcast_strip source

  (* Forward the strip start over the partial tree and wake due offers;
     both the forwards and the offers count toward the DS deficit. *)
  and broadcast_strip v =
    List.iter
      (fun c ->
        sync_comm := !sync_comm + edge_w v c;
        deficit.(v) <- deficit.(v) + 1;
        net.Net.send ~src:v ~dst:c (Strip threshold.(v)))
      children.(v);
    announce v;
    try_close v

  (* A vertex is passive when its own deficit is zero: close the DS
     engagement, shipping the aggregated join count up. *)
  and try_close v =
    if deficit.(v) = 0 then begin
      if v = source then strip_complete ()
      else if ds_parent.(v) >= 0 then begin
        let p = ds_parent.(v) in
        ds_parent.(v) <- -1;
        let count = gathered.(v) + self_pending.(v) in
        gathered.(v) <- 0;
        self_pending.(v) <- 0;
        sync_comm := !sync_comm + edge_w v p;
        net.Net.send ~src:v ~dst:p (Ack count)
      end
    end
  in
  let relax v ~src value =
    if value < dist.(v) then begin
      if dist.(v) = max_int then self_pending.(v) <- 1;
      (* Keep the partial-tree children lists current through parent
         switches (corrections within a strip). *)
      if parent.(v) >= 0 then
        children.(parent.(v)) <-
          List.filter (fun c -> c <> v) children.(parent.(v));
      dist.(v) <- value;
      parent.(v) <- src;
      children.(src) <- v :: children.(src);
      announce v
    end
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src m ->
        match m with
        | Offer { value; threshold = th } ->
          threshold.(v) <- max threshold.(v) th;
          let engaging = deficit.(v) = 0 && ds_parent.(v) < 0 && v <> source in
          if engaging then ds_parent.(v) <- src;
          relax v ~src value;
          if engaging then try_close v
          else begin
            (* Not an engagement: acknowledge immediately. *)
            sync_comm := !sync_comm + edge_w v src;
            net.Net.send ~src:v ~dst:src (Ack 0);
            try_close v
          end
        | Ack count ->
          gathered.(v) <- gathered.(v) + count;
          deficit.(v) <- deficit.(v) - 1;
          assert (deficit.(v) >= 0);
          try_close v
        | Strip th ->
          threshold.(v) <- max threshold.(v) th;
          (* Usually the tree forward is this vertex's engagement for the
             strip — but an in-strip offer may have engaged it first (the
             wave can outrun the tree broadcast), in which case the Strip
             is acknowledged immediately and the forwards are owed to the
             existing engagement. *)
          let engaging = deficit.(v) = 0 && ds_parent.(v) < 0 in
          if engaging then ds_parent.(v) <- src
          else begin
            sync_comm := !sync_comm + edge_w v src;
            net.Net.send ~src:v ~dst:src (Ack 0)
          end;
          broadcast_strip v)
  done;
  dist.(source) <- 0;
  net.Net.schedule ~delay:0.0 (fun () -> start_strip ());
  ignore (net.Net.run ~comm_budget ());
  if (net.Net.metrics ()).Csap_dsim.Metrics.weighted_comm >= comm_budget
  then None
  else begin
    assert !finished;
    let weights = Array.make n 0 in
    Array.iteri
      (fun v p ->
        if v <> source then begin
          assert (p >= 0);
          weights.(v) <- edge_w v p
        end)
      parent;
    let tree =
      Csap_graph.Tree.of_parents ~root:source ~parents:parent ~weights
    in
    Some
      {
        tree;
        measures = Measures.of_metrics (net.Net.metrics ());
        strips = !strips;
        offer_comm = !offer_comm;
        sync_comm = !sync_comm;
        transport = stats ();
      }
  end

let run ?delay ?faults ?reliable g ~source ~strip =
  match try_run ?delay ?faults ?reliable g ~source ~strip with
  | Some r -> r
  | None -> assert false (* unbounded budget always completes *)
