module Net = Csap_dsim.Net
module G = Csap_graph.Graph
module TC = Csap_cover.Tree_cover

type result = {
  pulses : int;
  pulse_times : float array array;
  max_pulse_delay : float;
  avg_pulse_delay : float;
  comm_per_pulse : float;
  measures : Measures.t;
  transport : Net.stats;
}

let summarise g ~metrics ~transport ~pulses pulse_times =
  let n = G.n g in
  let max_delay = ref 0.0 and sum = ref 0.0 and count = ref 0 in
  for v = 0 to n - 1 do
    for p = 1 to pulses do
      let d = pulse_times.(v).(p) -. pulse_times.(v).(p - 1) in
      assert (d >= 0.0);
      if d > !max_delay then max_delay := d;
      sum := !sum +. d;
      incr count
    done
  done;
  {
    pulses;
    pulse_times;
    max_pulse_delay = !max_delay;
    avg_pulse_delay = (if !count = 0 then 0.0 else !sum /. float_of_int !count);
    comm_per_pulse =
      float_of_int metrics.Csap_dsim.Metrics.weighted_comm
      /. float_of_int (max 1 pulses);
    measures = Measures.of_metrics metrics;
    transport;
  }

(* ------------------------------------------------------------------ *)
(* Synchronizer alpha*: direct neighbour exchange.                     *)
(* ------------------------------------------------------------------ *)

type alpha_msg = Pulse of int

let run_alpha ?delay ?faults ?reliable g ~pulses =
  let n = G.n g in
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let pulse_times = Array.make_matrix n (pulses + 1) nan in
  let current = Array.make n (-1) in
  (* heard.(v).(i) = highest pulse number received from neighbour i. *)
  let heard = Array.init n (fun v -> Array.make (G.degree g v) (-1)) in
  let neighbor_index = Array.init n (fun _ -> Hashtbl.create 4) in
  for v = 0 to n - 1 do
    let i = ref 0 in
    G.iter_neighbors g v (fun u _ _ ->
        Hashtbl.replace neighbor_index.(v) u !i;
        incr i)
  done;
  let rec try_pulse v =
    let p = current.(v) + 1 in
    if p <= pulses then
      if p = 0 || Array.for_all (fun h -> h >= p - 1) heard.(v) then begin
        current.(v) <- p;
        pulse_times.(v).(p) <- net.Net.now ();
        if p < pulses then
          G.iter_neighbors g v (fun u _ _ ->
              net.Net.send ~src:v ~dst:u (Pulse p));
        try_pulse v
      end
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src (Pulse p) ->
        let i = Hashtbl.find neighbor_index.(v) src in
        heard.(v).(i) <- max heard.(v).(i) p;
        try_pulse v)
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to n - 1 do
        try_pulse v
      done);
  ignore (net.Net.run ());
  summarise g ~metrics:(net.Net.metrics ()) ~transport:(stats ()) ~pulses
    pulse_times

(* ------------------------------------------------------------------ *)
(* Synchronizer beta*: one global tree with a leader.                  *)
(* ------------------------------------------------------------------ *)

type beta_msg =
  | Ready of int
  | Go of int

let default_tree g =
  let _, center = Csap_graph.Paths.radius_and_center g in
  (Slt.build g ~root:center).Slt.tree

let run_beta ?delay ?faults ?reliable ?tree g ~pulses =
  let tree = match tree with Some t -> t | None -> default_tree g in
  let n = G.n g in
  let root = Csap_graph.Tree.root tree in
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let pulse_times = Array.make_matrix n (pulses + 1) nan in
  let n_children =
    Array.init n (fun v -> List.length (Csap_graph.Tree.children tree v))
  in
  let ready_count = Array.make n 0 in
  (* Subtree of [v] is done with pulse [p]: report up, or release the next
     pulse from the root. *)
  let rec ready_up v p =
    ready_count.(v) <- 0;
    if v = root then begin
      if p < pulses then begin
        List.iter
          (fun c -> net.Net.send ~src:root ~dst:c (Go (p + 1)))
          (Csap_graph.Tree.children tree root);
        do_pulse root (p + 1)
      end
    end
    else
      match Csap_graph.Tree.parent tree v with
      | Some (parent, _) -> net.Net.send ~src:v ~dst:parent (Ready p)
      | None -> assert false

  and do_pulse v p =
    pulse_times.(v).(p) <- net.Net.now ();
    (* A pure clock pulse completes instantly; leaves are ready at once. *)
    if ready_count.(v) = n_children.(v) then ready_up v p
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        ignore src;
        match msg with
        | Ready p ->
          ready_count.(v) <- ready_count.(v) + 1;
          if
            ready_count.(v) = n_children.(v)
            && not (Float.is_nan pulse_times.(v).(p))
          then ready_up v p
        | Go p ->
          List.iter
            (fun c -> net.Net.send ~src:v ~dst:c (Go p))
            (Csap_graph.Tree.children tree v);
          do_pulse v p)
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to n - 1 do
        do_pulse v 0
      done);
  ignore (net.Net.run ());
  summarise g ~metrics:(net.Net.metrics ()) ~transport:(stats ()) ~pulses
    pulse_times

(* ------------------------------------------------------------------ *)
(* Synchronizer gamma*: beta inside each cover tree, alpha among trees. *)
(* ------------------------------------------------------------------ *)

type gamma_msg =
  | TReady of { tree : int; pulse : int }
  | TDone of { tree : int; pulse : int }
  | TNeighborDone of { src_tree : int; dst_tree : int; pulse : int }
  | TGo of { tree : int; pulse : int }

let run_gamma ?delay ?faults ?reliable ?cover ?(neighbor_phase = true) g
    ~pulses =
  let cover = match cover with Some c -> c | None -> TC.build g in
  let n = G.n g in
  let trees = Array.of_list cover.TC.trees in
  let tcount = Array.length trees in
  let children = Array.map TC.children trees in
  let tree_children tid v =
    match Hashtbl.find_opt children.(tid) v with
    | Some cs -> cs
    | None -> []
  in
  let member_trees = Array.make n [] in
  Array.iteri
    (fun tid (tr : TC.cluster_tree) ->
      List.iter
        (fun v -> member_trees.(v) <- tid :: member_trees.(v))
        tr.TC.members)
    trees;
  (* For each ordered pair of trees sharing a vertex, a designated relay
     vertex (the smallest shared one). *)
  let relay = Hashtbl.create 16 in
  for v = n - 1 downto 0 do
    List.iter
      (fun a ->
        List.iter
          (fun b -> if a <> b then Hashtbl.replace relay (a, b) v)
          member_trees.(v))
      member_trees.(v)
  done;
  let neighbor_count = Array.make tcount 0 in
  Hashtbl.iter
    (fun (_, b) _ -> neighbor_count.(b) <- neighbor_count.(b) + 1)
    relay;
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let pulse_times = Array.make_matrix n (pulses + 1) nan in
  let current = Array.make n (-1) in
  (* go.(v).(tid): the latest pulse this vertex knows tree [tid] released.
     Pulse 0 is released unconditionally. *)
  let go = Array.make_matrix n tcount 0 in
  (* Convergecast progress per (tree, pulse, vertex): children heard from,
     plus one for the vertex's own pulse. *)
  let ready_tbl = Hashtbl.create 64 in
  let incr_ready tid p v =
    let k = (tid, p, v) in
    let c = try Hashtbl.find ready_tbl k with Not_found -> 0 in
    Hashtbl.replace ready_tbl k (c + 1);
    c + 1
  in
  (* Leader-local state per tree. *)
  let released = Array.make tcount 0 in
  let own_done = Hashtbl.create 64 in
  let ndone_tbl = Hashtbl.create 64 in
  let rec node_try_pulse v =
    let p = current.(v) + 1 in
    if p <= pulses then
      if List.for_all (fun tid -> go.(v).(tid) >= p) member_trees.(v) then begin
        current.(v) <- p;
        pulse_times.(v).(p) <- net.Net.now ();
        List.iter (fun tid -> node_ready tid p v) member_trees.(v);
        node_try_pulse v
      end

  and node_ready tid p v =
    let needed = List.length (tree_children tid v) + 1 in
    let have = incr_ready tid p v in
    assert (have <= needed);
    if have = needed then begin
      let tr = trees.(tid) in
      if v = tr.TC.root then tree_done tid p
      else
        net.Net.send ~src:v ~dst:tr.TC.parent.(v)
          (TReady { tree = tid; pulse = p })
    end

  and tree_done tid p =
    Hashtbl.replace own_done (tid, p) ();
    broadcast_done tid p trees.(tid).TC.root;
    leader_check tid p

  and broadcast_done tid p v =
    List.iter
      (fun c -> net.Net.send ~src:v ~dst:c (TDone { tree = tid; pulse = p }))
      (tree_children tid v);
    if neighbor_phase then relay_done tid p v

  (* If [v] is the designated relay from [tid] towards a neighbouring tree,
     start a report towards that tree's leader (alpha among trees). *)
  and relay_done tid p v =
    List.iter
      (fun dst_tree ->
        if dst_tree <> tid then
          match Hashtbl.find_opt relay (tid, dst_tree) with
          | Some r when r = v -> forward_ndone ~src_tree:tid ~dst_tree ~pulse:p v
          | _ -> ())
      member_trees.(v)

  and forward_ndone ~src_tree ~dst_tree ~pulse v =
    let tr = trees.(dst_tree) in
    if v = tr.TC.root then begin
      let k = (dst_tree, pulse) in
      let c = try Hashtbl.find ndone_tbl k with Not_found -> 0 in
      Hashtbl.replace ndone_tbl k (c + 1);
      leader_check dst_tree pulse
    end
    else
      net.Net.send ~src:v ~dst:tr.TC.parent.(v)
        (TNeighborDone { src_tree; dst_tree; pulse })

  (* The leader releases pulse p+1 once its own tree and every neighbouring
     tree are done with pulse p. *)
  and leader_check tid p =
    if p < pulses && released.(tid) = p then begin
      let own = Hashtbl.mem own_done (tid, p) in
      let nd = try Hashtbl.find ndone_tbl (tid, p) with Not_found -> 0 in
      assert (nd <= neighbor_count.(tid));
      let neighbors_ok =
        (not neighbor_phase) || nd = neighbor_count.(tid)
      in
      if own && neighbors_ok then begin
        released.(tid) <- p + 1;
        broadcast_go tid (p + 1) trees.(tid).TC.root
      end
    end

  and broadcast_go tid p v =
    go.(v).(tid) <- max go.(v).(tid) p;
    List.iter
      (fun c -> net.Net.send ~src:v ~dst:c (TGo { tree = tid; pulse = p }))
      (tree_children tid v);
    node_try_pulse v
  in
  for v = 0 to n - 1 do
    net.Net.set_handler v (fun ~src msg ->
        ignore src;
        match msg with
        | TReady { tree; pulse } -> node_ready tree pulse v
        | TDone { tree; pulse } -> broadcast_done tree pulse v
        | TNeighborDone { src_tree; dst_tree; pulse } ->
          forward_ndone ~src_tree ~dst_tree ~pulse v
        | TGo { tree; pulse } -> broadcast_go tree pulse v)
  done;
  net.Net.schedule ~delay:0.0 (fun () ->
      for v = 0 to n - 1 do
        node_try_pulse v
      done);
  ignore (net.Net.run ());
  summarise g ~metrics:(net.Net.metrics ()) ~transport:(stats ()) ~pulses
    pulse_times

let check_causality g r =
  let ok = ref true in
  for v = 0 to G.n g - 1 do
    for p = 1 to r.pulses do
      G.iter_neighbors g v (fun u _ _ ->
          if r.pulse_times.(v).(p) < r.pulse_times.(u).(p - 1) -. 1e-9 then
            ok := false)
    done
  done;
  !ok
