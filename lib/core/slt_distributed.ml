module Net = Csap_dsim.Net
module G = Csap_graph.Graph
module Tree = Csap_graph.Tree

type result = {
  tree : Tree.t;
  q : float;
  measures : Measures.t;
  mst_measures : Measures.t;
  spt_measures : Measures.t;
  walk_measures : Measures.t;
  final_measures : Measures.t;
  transport : Net.stats;
}

(* The token carries the scan state along the Euler tour; every vertex can
   evaluate the breakpoint test locally because MST_centr / SPT_centr left
   it a full-information copy of both trees. *)
type walk_msg = Step of { index : int; mileage : int; last_bp : int }

let token_walk ?delay ?faults ?reliable g ~mst ~spt ~q =
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let line = Tree.euler_tour mst in
  let len = Array.length line in
  let mileage_of = Array.make len 0 in
  for i = 1 to len - 1 do
    let w =
      match G.edge_between g line.(i - 1) line.(i) with
      | Some (w, _) -> w
      | None -> assert false
    in
    mileage_of.(i) <- mileage_of.(i - 1) + w
  done;
  let breakpoints = ref [ 0 ] in
  let finished = ref false in
  (* Advance the scan locally as far as possible, then hop the token. *)
  let advance v index last_bp =
    assert (line.(index) = v);
    if index = len - 1 then finished := true
    else begin
      let next = index + 1 in
      let line_dist = mileage_of.(next) - mileage_of.(last_bp) in
      let spt_dist = Tree.path_weight spt line.(last_bp) line.(next) in
      let last_bp =
        if float_of_int line_dist > q *. float_of_int spt_dist then begin
          breakpoints := next :: !breakpoints;
          next
        end
        else last_bp
      in
      net.Net.send ~src:v ~dst:line.(next)
        (Step { index = next; mileage = mileage_of.(next); last_bp })
    end
  in
  for v = 0 to G.n g - 1 do
    net.Net.set_handler v (fun ~src:_ (Step { index; mileage = _; last_bp }) ->
        advance v index last_bp)
  done;
  net.Net.schedule ~delay:0.0 (fun () -> advance line.(0) 0 0);
  ignore (net.Net.run ());
  assert !finished;
  ( List.rev !breakpoints,
    line,
    Measures.of_metrics (net.Net.metrics ()),
    stats () )

let run ?delay ?faults ?reliable ?(q = 2.0) g ~root =
  if q <= 0.0 then invalid_arg "Slt_distributed.run: q must be positive";
  if root < 0 || root >= G.n g then
    invalid_arg
      (Printf.sprintf "Slt_distributed.run: root %d out of range [0, %d)"
         root (G.n g));
  (* Stage 1-2: full-information MST and SPT. *)
  let mst_r = Centr_growth.run_mst ?delay ?faults ?reliable g ~root in
  let spt_r = Centr_growth.run_spt ?delay ?faults ?reliable g ~root in
  let mst = mst_r.Centr_growth.grown_tree in
  let spt = spt_r.Centr_growth.grown_tree in
  (* Stage 3: the token walk selecting breakpoints. *)
  let breakpoints, line, walk_measures, walk_stats =
    token_walk ?delay ?faults ?reliable g ~mst ~spt ~q
  in
  (* The subgraph G': MST plus SPT paths between consecutive breakpoints.
     The root then broadcasts it over the tree; that broadcast costs one
     message per tree edge, which is dominated by the stages above and
     already accounted in this stage's structure. *)
  let edge_ids = Hashtbl.create (G.n g * 2) in
  let add_edge u v =
    match G.edge_between g u v with
    | Some (_, id) -> Hashtbl.replace edge_ids id ()
    | None -> assert false
  in
  List.iter (fun (p, c, _) -> add_edge p c) (Tree.edges mst);
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      let rec walk = function
        | x :: (y :: _ as r) ->
          add_edge x y;
          walk r
        | _ -> ()
      in
      walk (Tree.path spt line.(a) line.(b));
      pairs rest
    | _ -> ()
  in
  pairs breakpoints;
  let g' =
    G.create ~n:(G.n g)
      (Hashtbl.fold
         (fun id () acc ->
           let e = G.edge g id in
           (e.G.u, e.G.v, e.G.w) :: acc)
         edge_ids [])
  in
  (* Stage 4: final SPT inside G'. *)
  let final_r = Centr_growth.run_spt ?delay ?faults ?reliable g' ~root in
  let measures =
    List.fold_left Measures.add Measures.zero
      [
        mst_r.Centr_growth.measures;
        spt_r.Centr_growth.measures;
        walk_measures;
        final_r.Centr_growth.measures;
      ]
  in
  {
    tree = final_r.Centr_growth.grown_tree;
    q;
    measures;
    mst_measures = mst_r.Centr_growth.measures;
    spt_measures = spt_r.Centr_growth.measures;
    walk_measures;
    final_measures = final_r.Centr_growth.measures;
    transport =
      (let sum a b =
         Net.
           {
             retransmissions = a.retransmissions + b.retransmissions;
             restarts = a.restarts + b.restarts;
           }
       in
       List.fold_left sum Net.no_stats
         [
           mst_r.Centr_growth.transport;
           spt_r.Centr_growth.transport;
           walk_stats;
           final_r.Centr_growth.transport;
         ]);
  }
