(** The flooding algorithm CON_flood (Section 6.1).

    Broadcasts a message from a source: each vertex forwards the first copy
    it receives to all its other neighbours. Communication [O(script-E)]
    (every edge carries at most two copies), time [O(script-D)] (the wave
    follows shortest paths). The first-contact edges form a spanning tree,
    which solves connected components / spanning tree (Section 7), at the
    [O(script-E)] end of the trade-off. *)

type result = {
  tree : Csap_graph.Tree.t;  (** the spanning tree of first contacts *)
  arrival : float array;  (** time the wave reached each vertex *)
  measures : Measures.t;
}

(** A reusable engine for multi-trial flood loops; see {!make_engine}. *)
type engine

(** [make_engine ?delay g] builds the engine [run ~engine] reuses across
    trials on the same [g] — one allocation of the per-vertex and
    per-edge state per (instance) point instead of one per trial. *)
val make_engine : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t -> engine

(** [run ?delay ?faults ?engine g ~source] floods from [source];
    requires a connected graph. When [engine] is given it must have been
    built over [g] (checked by graph identity; raises [Invalid_argument]
    otherwise); it is {!Csap_dsim.Engine.reset} — installing [delay] and
    [faults] if provided (and clearing any previous plan otherwise) —
    and reused instead of creating a fresh engine, which multi-seed
    trial loops exploit to skip per-trial reconstruction.

    With [faults], messages run over the raw (unreliable) engine: a plan
    that drops a first-contact copy can leave the wave short of some
    vertices, in which case [run] raises [Invalid_argument] like it does
    on a disconnected graph. Use {!run_reliable} for correctness under
    faults. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?engine:engine ->
  Csap_graph.Graph.t ->
  source:int ->
  result

(** [run_partitioned ?delay ?partition ~domains g ~source] floods on the
    partitioned engine ({!Csap_dsim.Pengine}) across [domains] OCaml
    domains and returns a result {b bit-identical} to [run]'s: same
    tree, same arrival times, same measures. The delay model must be
    order-independent ({!Csap_dsim.Delay.order_independent}); no fault
    support. *)
val run_partitioned :
  ?delay:Csap_dsim.Delay.t ->
  ?partition:Csap_graph.Partition.t ->
  domains:int ->
  Csap_graph.Graph.t ->
  source:int ->
  result

type reliable_result = {
  result : result;
  retransmissions : int;  (** timeout-driven data retransmissions *)
  restarts : int;  (** crash-restart events observed *)
}

(** [run_reliable ?delay ?faults ?rto ?max_rto ?on_restart g ~source]
    floods through the {!Csap_dsim.Reliable} shim: under any survivable
    fault plan (loss < 1, finite outages and crashes) the wave covers
    the graph and the first-contact tree is a valid spanning tree.
    [on_restart v] is called each time vertex [v] restarts after a
    crash, after the shim has re-armed its timers. *)
val run_reliable :
  ?delay:Csap_dsim.Delay.t ->
  ?faults:Csap_dsim.Fault.plan ->
  ?rto:float ->
  ?max_rto:float ->
  ?on_restart:(int -> unit) ->
  Csap_graph.Graph.t ->
  source:int ->
  reliable_result
