(** The flooding algorithm CON_flood (Section 6.1).

    Broadcasts a message from a source: each vertex forwards the first copy
    it receives to all its other neighbours. Communication [O(script-E)]
    (every edge carries at most two copies), time [O(script-D)] (the wave
    follows shortest paths). The first-contact edges form a spanning tree,
    which solves connected components / spanning tree (Section 7), at the
    [O(script-E)] end of the trade-off. *)

type result = {
  tree : Csap_graph.Tree.t;  (** the spanning tree of first contacts *)
  arrival : float array;  (** time the wave reached each vertex *)
  measures : Measures.t;
}

(** A reusable engine for multi-trial flood loops; see {!make_engine}. *)
type engine

(** [make_engine ?delay g] builds the engine [run ~engine] reuses across
    trials on the same [g] — one allocation of the per-vertex and
    per-edge state per (instance) point instead of one per trial. *)
val make_engine : ?delay:Csap_dsim.Delay.t -> Csap_graph.Graph.t -> engine

(** [run ?delay ?engine g ~source] floods from [source]; requires a
    connected graph. When [engine] is given it must have been built over
    [g] (checked by graph identity; raises [Invalid_argument]
    otherwise); it is {!Csap_dsim.Engine.reset} — installing [delay] if
    provided — and reused instead of creating a fresh engine, which
    multi-seed trial loops exploit to skip per-trial reconstruction. *)
val run :
  ?delay:Csap_dsim.Delay.t ->
  ?engine:engine ->
  Csap_graph.Graph.t ->
  source:int ->
  result
