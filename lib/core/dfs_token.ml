(* Cold call site of the deprecated tuple [Graph.neighbors]: the token
   walk addresses a vertex's ports by position ([iter.(v)]-th neighbour),
   which wants the random-access array the shim provides. *)
[@@@alert "-deprecated"]

module Net = Csap_dsim.Net
module G = Csap_graph.Graph

type msg =
  | Forward  (* token visits a neighbour *)
  | Reject  (* neighbour was already visited; token bounces back *)
  | Retreat  (* token backtracks to its DFS parent *)
  | To_root of int  (* estimate refresh hop, carrying the new estimate *)
  | From_root  (* token release hop, routed back to the frontier *)

type 'm shared = {
  net : 'm Net.t;
  inject : msg -> 'm;
  root : int;
  may_proceed : unit -> bool;
  on_root_estimate : int -> unit;
  on_done : unit -> unit;
}

type 'm t = {
  sh : 'm shared;
  visited : bool array;
  parent : int array;
  parent_w : int array;
  iter : int array;  (* next adjacency index to try at each vertex *)
  return_child : int array;  (* routing for From_root hops *)
  mutable est_c : int;
  mutable est_r : int;
  mutable pending_site : int;  (* vertex where the token waits, or -1 *)
  mutable pending_action : (unit -> unit) option;
  mutable suspended : bool;
  mutable finished : bool;
}

let create ~net ~inject ~root ?(may_proceed = fun () -> true)
    ?(on_root_estimate = fun _ -> ()) ~on_done () =
  let n = G.n net.Net.graph in
  {
    sh = { net; inject; root; may_proceed; on_root_estimate; on_done };
    visited = Array.make n false;
    parent = Array.make n (-1);
    parent_w = Array.make n 0;
    iter = Array.make n 0;
    return_child = Array.make n (-1);
    est_c = 0;
    est_r = 0;
    pending_site = -1;
    pending_action = None;
    suspended = false;
    finished = false;
  }

let send t ~src ~dst m = t.sh.net.Net.send ~src ~dst (t.sh.inject m)

(* Run the pending traversal parked at the root. *)
let rec fire_pending t =
  t.pending_site <- -1;
  match t.pending_action with
  | Some action ->
    t.pending_action <- None;
    action ()
  | None -> assert false

(* Token release: route From_root hops back to the waiting frontier. *)
and release t =
  let v = t.sh.root in
  if t.pending_site = v then fire_pending t
  else send t ~src:v ~dst:t.return_child.(v) From_root

and root_update t est =
  t.est_r <- est;
  t.sh.on_root_estimate est;
  if t.sh.may_proceed () then release t else t.suspended <- true

(* Every token traversal from [v] over an edge of weight [w] passes through
   this guard: when it would double the centre estimate relative to the
   root's view, the root estimate is refreshed (hops to the root and back)
   before the traversal happens. This keeps EST_R a 2-approximation of
   EST_C at all times and at most doubles the communication. *)
and guarded_traversal t v ~w action =
  if t.est_c + w >= 2 * t.est_r then begin
    t.pending_site <- v;
    t.pending_action <- Some action;
    if v = t.sh.root then root_update t (t.est_c + w)
    else send t ~src:v ~dst:t.parent.(v) (To_root (t.est_c + w))
  end
  else action ()

(* The token sits at [v]; advance the DFS. *)
and continue_at t v =
  let g = t.sh.net.Net.graph in
  let deg = G.degree g v in
  (* Skip the edge back to the DFS parent; it is used only by Retreat. *)
  while t.iter.(v) < deg
        && (let u, _, _ = (G.neighbors g v).(t.iter.(v)) in
            v <> t.sh.root && u = t.parent.(v))
  do
    t.iter.(v) <- t.iter.(v) + 1
  done;
  if t.iter.(v) < deg then begin
    let u, w, _ = (G.neighbors g v).(t.iter.(v)) in
    guarded_traversal t v ~w (fun () ->
        t.est_c <- t.est_c + w;
        send t ~src:v ~dst:u Forward)
  end
  else if v = t.sh.root then begin
    t.finished <- true;
    t.sh.on_done ()
  end
  else begin
    let w = t.parent_w.(v) in
    guarded_traversal t v ~w (fun () ->
        t.est_c <- t.est_c + w;
        send t ~src:v ~dst:t.parent.(v) Retreat)
  end

let handle t ~me ~src msg =
  let g = t.sh.net.Net.graph in
  match msg with
  | Forward ->
    if t.visited.(me) then begin
      let w =
        match G.edge_between g me src with
        | Some (w, _) -> w
        | None -> assert false
      in
      guarded_traversal t me ~w (fun () ->
          t.est_c <- t.est_c + w;
          send t ~src:me ~dst:src Reject)
    end
    else begin
      t.visited.(me) <- true;
      if me <> t.sh.root then begin
        t.parent.(me) <- src;
        match G.edge_between g me src with
        | Some (w, _) -> t.parent_w.(me) <- w
        | None -> assert false
      end;
      continue_at t me
    end
  | Reject | Retreat ->
    t.iter.(me) <- t.iter.(me) + 1;
    continue_at t me
  | To_root est ->
    t.return_child.(me) <- src;
    if me = t.sh.root then root_update t est
    else send t ~src:me ~dst:t.parent.(me) (To_root est)
  | From_root ->
    if t.pending_site = me then fire_pending t
    else send t ~src:me ~dst:t.return_child.(me) From_root

let start t =
  t.sh.net.Net.schedule ~delay:0.0 (fun () ->
      t.visited.(t.sh.root) <- true;
      continue_at t t.sh.root)

let resume t =
  if t.suspended then begin
    t.suspended <- false;
    release t
  end

let finished t = t.finished

let tree t =
  if not t.finished then failwith "Dfs_token.tree: DFS not finished";
  Csap_graph.Tree.of_parents ~root:t.sh.root ~parents:t.parent
    ~weights:t.parent_w

let root_estimate t = t.est_r
let center_estimate t = t.est_c

type result = {
  dfs_tree : Csap_graph.Tree.t;
  measures : Measures.t;
  final_center_estimate : int;
  final_root_estimate : int;
  transport : Net.stats;
}

let run ?delay ?faults ?reliable g ~root =
  if root < 0 || root >= G.n g then
    invalid_arg
      (Printf.sprintf "Dfs_token.run: root %d out of range [0, %d)" root
         (G.n g));
  let net = Net.make ?reliable ?delay ?faults g in
  let stats = Net.monitor net in
  let t = create ~net ~inject:Fun.id ~root ~on_done:(fun () -> ()) () in
  for v = 0 to G.n g - 1 do
    net.Net.set_handler v (fun ~src m -> handle t ~me:v ~src m)
  done;
  start t;
  ignore (net.Net.run ());
  if not (finished t) then failwith "Dfs_token.run: did not terminate";
  {
    dfs_tree = tree t;
    measures = Measures.of_metrics (net.Net.metrics ());
    final_center_estimate = center_estimate t;
    final_root_estimate = root_estimate t;
    transport = stats ();
  }
