(* Benches CS and SY: clock synchronization (Section 3) and network
   synchronizers (Section 4). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module SP = Csap_dsim.Sync_protocol

(* --- CS: pulse delay of the clock synchronizers ----------------------- *)

let cs () =
  let pulses = 8 in
  let jobs =
    List.map
      (fun (n, w) ->
        Report.row_job
          (Printf.sprintf "n=%d W=%d" n w)
          (fun () ->
            let g = Gen.chorded_cycle n ~chord_w:w in
            let d = float_of_int (Csap_graph.Paths.max_neighbor_distance g) in
            let diam = float_of_int (Csap_graph.Paths.diameter g) in
            let a = Csap.Clock_sync.run_alpha g ~pulses in
            let b = Csap.Clock_sync.run_beta g ~pulses in
            let c = Csap.Clock_sync.run_gamma g ~pulses in
            let lean =
              Csap.Clock_sync.run_gamma ~neighbor_phase:false g ~pulses
            in
            let logn = Report.log2 (float_of_int n) in
            [
              Report.Int n;
              Report.Int w;
              Report.Float d;
              Report.Float diam;
              Report.Float a.Csap.Clock_sync.max_pulse_delay;
              Report.Float
                (Report.ratio a.Csap.Clock_sync.max_pulse_delay
                   (float_of_int w));
              Report.Float b.Csap.Clock_sync.max_pulse_delay;
              Report.Float
                (Report.ratio b.Csap.Clock_sync.max_pulse_delay diam);
              Report.Float c.Csap.Clock_sync.max_pulse_delay;
              Report.Float
                (Report.ratio c.Csap.Clock_sync.max_pulse_delay
                   (d *. logn *. logn));
              Report.Float lean.Csap.Clock_sync.max_pulse_delay;
            ]))
      [ (12, 50); (16, 100); (24, 200); (32, 400); (48, 800) ]
  in
  {
    Report.id = "CS";
    title = "clock synchronization (Section 3)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: alpha* Theta(W), beta* Theta(D), gamma* O(d log^2 n); \
           lower bound Omega(d)@.";
        Report.table
          ~columns:
            [
              "n"; "W"; "d"; "D"; "alpha*"; "/W"; "beta*"; "/D"; "gamma*";
              "/(d log^2 n)"; "gamma*-lean";
            ]
          (Report.all_rows results);
        Format.printf
          "shape check: alpha* scales with W (ratio 1), beta* with D, \
           while gamma* stays near d log^2 n — independent of W. The -lean \
           column is the ablation without the alpha-among-trees phase: \
           still causal (the cover spans every edge) and never slower.@.");
  }

(* --- SY: amortized synchronizer overheads ------------------------------ *)

let gossip =
  {
    SP.init = (fun _ ~me -> me + 1);
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        let state =
          List.fold_left (fun acc (src, x) -> (acc * 31) + x + src) state inbox
        in
        let sends =
          List.rev
            (G.fold_neighbors g me
               (fun acc u w _ -> if pulse mod w = 0 then (u, state) :: acc else acc)
               [])
        in
        (state, sends))
  }

let sy () =
  let pulses = 64 in
  (* One normalized network shared by every job; the reference executor is
     re-run inside each job that needs an exactness check, keeping the
     jobs independent. *)
  let g =
    Csap.Normalize.graph
      (Gen.random_connected (Csap_graph.Rng.create 21) 48 ~extra_edges:48
         ~wmax:64)
  in
  let three_job =
    Report.job "three synchronizers" (fun () ->
        let reference = Csap_dsim.Sync_runner.run g gossip ~pulses in
        List.map
          (fun (name, run) ->
            let o = run () in
            [
              Report.Str name;
              Report.Float o.Csap.Synchronizer.amortized_comm;
              Report.Float o.Csap.Synchronizer.amortized_time;
              Report.Str
                (if
                   o.Csap.Synchronizer.states
                   = reference.Csap_dsim.Sync_runner.states
                 then "yes"
                 else "NO");
            ])
          [
            ("alpha_w", fun () -> Csap.Synchronizer.run_alpha g gossip ~pulses);
            ("beta_w", fun () -> Csap.Synchronizer.run_beta g gossip ~pulses);
            ( "gamma_w k=2",
              fun () -> Csap.Synchronizer.run_gamma_w ~k:2 g gossip ~pulses );
          ])
  in
  let k_jobs =
    List.map
      (fun k ->
        Report.row_job
          (Printf.sprintf "gamma_w k=%d" k)
          (fun () ->
            let o = Csap.Synchronizer.run_gamma_w ~k g gossip ~pulses in
            let kf = float_of_int k in
            let n = float_of_int (G.n g) in
            let logw = Report.log2 (float_of_int (G.max_weight g)) in
            [
              Report.Int k;
              Report.Float o.Csap.Synchronizer.amortized_comm;
              Report.Float
                (Report.ratio o.Csap.Synchronizer.amortized_comm
                   (kf *. n *. logw));
              Report.Float o.Csap.Synchronizer.amortized_time;
              Report.Float
                (Report.ratio o.Csap.Synchronizer.amortized_time
                   (log n /. log kf *. logw));
            ]))
      [ 2; 3; 4; 6; 8 ]
  in
  let ablation_job =
    Report.job "level-set ablation" (fun () ->
        let reference = Csap_dsim.Sync_runner.run g gossip ~pulses in
        List.map
          (fun (name, mode) ->
            let o =
              Csap.Synchronizer.run_gamma_w ~k:2 ~levels:mode g gossip ~pulses
            in
            [
              Report.Str name;
              Report.Int o.Csap.Synchronizer.control_comm;
              Report.Int o.Csap.Synchronizer.ack_comm;
              Report.Float o.Csap.Synchronizer.amortized_comm;
              Report.Str
                (if
                   o.Csap.Synchronizer.states
                   = reference.Csap_dsim.Sync_runner.states
                 then "yes"
                 else "NO");
            ])
          [ ("partition", `Partition); ("divisible", `Divisible) ])
  in
  {
    Report.id = "SY";
    title = "network synchronizers (Section 4)";
    jobs = [ three_job ] @ k_jobs @ [ ablation_job ];
    render =
      (fun results ->
        Format.printf
          "paper: C_p(gamma_w) = O(k n log W), T_p = O(log_k n log W); \
           alpha_w pays O(E) comm / O(W) time per pulse@.";
        Report.subheading "three synchronizers on one normalized network";
        Report.table
          ~columns:[ "synchronizer"; "C_p"; "T_p"; "exact?" ]
          results.(0);
        Report.subheading "gamma_w parameter sweep (k)";
        Report.table
          ~columns:[ "k"; "C_p"; "/(k n logW)"; "T_p"; "/(log_k n logW)" ]
          (Report.all_rows (Array.sub results 1 (List.length k_jobs)));
        Report.subheading
          "ablation: level sets E_i as a partition vs the paper's literal \
           divisible-by-2^i";
        Report.table
          ~columns:[ "levels"; "control"; "acks"; "C_p"; "exact?" ]
          results.(Array.length results - 1);
        Format.printf
          "shape check: C_p grows with k and stays within O(k n log W); \
           T_p falls with k as O(log_k n log W); all runs simulate the \
           synchronous execution exactly; the literal divisible level sets \
           cost strictly more control traffic for the same guarantee.@.");
  }
