(* Bench FX: the fault-injection sweep.

   The clean sweep (SX) quantifies over delay schedules; this figure adds
   the fault adversary: seeded per-message loss and duplication, burst
   outages on the heaviest edge, and crash-restart of a vertex, all
   behind the reliable-delivery shim. The oracle checks are the same as
   the clean sweep's — the shim is what makes them hold on a faulty
   network — and the reported number is the retransmission overhead
   factor: weighted communication under faults over the clean unwrapped
   run's. Every passing run is additionally replayed from its own trace
   (event-for-event equality); the CI fault-sweep job runs this figure
   and uploads the JSONL traces of any failing run. *)

module Gen = Csap_graph.Generators
module S = Csap_sched.Sched_explore

let fault_plans = 8

(* The reliable roster comes straight from the protocol registry: every
   fault-capable protocol behind the shim. *)
let targets = S.registry_fault_targets ()

(* One job per family: every reliable target under 3 adversarial delay
   schedules x [fault_plans] seeded fault plans, replay-checked. *)
let family_job name build =
  {
    Report.label = name;
    run =
      (fun () ->
        let g = build () in
        let summaries =
          S.explore_faults
            ~pool:(Csap_pool.create ~domains:1 ())
            ~trace_dir:"fault-traces" ~check_replay:true g ~targets
            ~delays:(S.adversarial_schedules g)
            ~faults:(S.fault_schedules g fault_plans)
        in
        List.map
          (fun (s : S.fault_summary) ->
            [
              Report.Str name;
              Report.Str s.S.ftarget_name;
              Report.Int (Array.length s.S.fruns);
              Report.Int s.S.ffailures;
              Report.Int s.S.clean_comm;
              Report.Float s.S.worst_overhead;
              Report.Float s.S.mean_overhead;
            ])
          summaries);
  }

let fx () =
  let jobs =
    [
      family_job "grid" (fun () -> Gen.grid 4 4 ~w:4);
      family_job "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 11) 14 ~extra_edges:16
            ~wmax:8);
      family_job "chorded" (fun () -> Gen.chorded_cycle 10 ~chord_w:16);
    ]
  in
  {
    Report.id = "FX";
    title = "fault-injection sweep (reliable shim, retransmission overhead)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "3 adversarial delay schedules x %d seeded fault plans (loss, \
           loss+dup, heavy-edge outage, crash-restart) per protocol; \
           oracle-checked and replayed from trace on every run@."
          fault_plans;
        Report.table
          ~columns:
            [
              "family";
              "target";
              "K";
              "fail";
              "clean comm";
              "worst overhead";
              "mean overhead";
            ]
          (List.concat (Array.to_list results));
        Format.printf
          "shape check: fail = 0 everywhere (the shim restores the clean \
           oracle under faults); overhead factor >= 1 — the price of \
           reliability the bounds inherit.@.");
  }
