(* Bench FM: farm parity.

   The farm must be a transport, not a semantics: a sweep cell executed
   by the job server — serialised to JSON, spooled, checkpointed,
   run on a worker domain — must report exactly the measures the same
   cell reports when run directly in-process. This figure runs one
   roster both ways and prints the two sides next to each other; any
   `MISMATCH' in the parity column fails the figure (the CI farm job
   asserts it). The farm side also resumes its own finished checkpoint
   and reports how many cells the resume skipped — which must be all of
   them. *)

module Cell = Csap_farm.Cell
module Farm = Csap_farm.Farm
module Manifest = Csap_farm.Manifest

(* The parity roster: one cell per protocol family of the registry
   sweep, under both the deterministic default and a seeded adversarial
   schedule. Everything carries check=true, so the sequential-oracle
   invariants are asserted inside the farm workers too. *)
let roster =
  [
    Cell.make ~family:"grid" ~n:25 ~w:4 ~delay:"exact" "flood";
    Cell.make ~family:"grid" ~n:25 ~w:4 ~delay:"seeded:3" "flood";
    Cell.make ~family:"complete" ~n:10 ~w:5 ~delay:"exact" "mst-ghs";
    Cell.make ~family:"complete" ~n:10 ~w:5 ~delay:"seeded:5" "mst-ghs";
    Cell.make ~family:"random" ~n:12 ~delay:"exact" "spt-synch";
    Cell.make ~family:"grid" ~n:16 ~delay:"seeded:7" "dfs-token";
  ]

let measures_row (m : Csap.Measures.t) =
  (m.Csap.Measures.comm, m.Csap.Measures.time, m.Csap.Measures.messages)

(* Direct side: the cells executed in-process, sequentially. *)
let direct_job =
  {
    Report.label = "direct";
    run =
      (fun () ->
        List.map
          (fun c ->
            match (Cell.run c).Cell.result with
            | Ok o ->
              let comm, time, msgs =
                measures_row o.Csap.Protocol.Outcome.measures
              in
              [ Report.Int comm; Report.Float time; Report.Int msgs ]
            | Error e ->
              [ Report.Str (Cell.error_message e); Report.Str "-";
                Report.Str "-" ])
          roster);
  }

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* Farm side: the same cells through Farm.sweep (spool-format cells,
   checkpoint manifest, worker domains), results read back from the
   manifest; then a resume of the finished checkpoint, which must skip
   every cell. *)
let farm_job =
  {
    Report.label = "farm";
    run =
      (fun () ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "csap-bench-farm-%d-%.0f" (Unix.getpid ())
               (Unix.gettimeofday () *. 1e6))
        in
        let cfg = Farm.config ~workers:2 ~dir () in
        let s = Farm.sweep cfg roster in
        let s' = Farm.sweep ~resume:true cfg roster in
        let entries =
          Manifest.entries
            (Manifest.load ~readonly:true (Farm.manifest_path ~dir))
        in
        let rows =
          List.map
            (fun (e : Manifest.entry) ->
              match (e.Manifest.state, e.Manifest.result) with
              | Manifest.Done, Some r ->
                [ Report.Int r.Manifest.comm; Report.Float r.Manifest.time;
                  Report.Int r.Manifest.messages ]
              | _ ->
                [ Report.Str
                    (Option.value ~default:"no result" e.Manifest.error);
                  Report.Str "-"; Report.Str "-" ])
            entries
        in
        rm_rf dir;
        rows
        @ [
            [ Report.Int s.Farm.completed; Report.Int s.Farm.failed;
              Report.Int s'.Farm.skipped ];
          ]);
  }

let fm () =
  {
    Report.id = "FM";
    title = "farm parity (in-process vs. job-server execution)";
    jobs = [ direct_job; farm_job ];
    render =
      (fun results ->
        let direct = results.(0) in
        let farm_rows = results.(1) in
        let n = List.length roster in
        let farm = List.filteri (fun i _ -> i < n) farm_rows in
        let summary = List.nth farm_rows n in
        let rows =
          List.mapi
            (fun i c ->
              let d = List.nth direct i and f = List.nth farm i in
              let parity = if d = f then "ok" else "MISMATCH" in
              [ Report.Str c.Cell.protocol;
                Report.Str (Option.value ~default:"exact" c.Cell.delay);
                Report.Str c.Cell.family; Report.Int c.Cell.n ]
              @ d @ f
              @ [ Report.Str parity ])
            roster
        in
        Report.table
          ~columns:
            [ "protocol"; "delay"; "family"; "n"; "comm"; "time"; "msgs";
              "comm'"; "time'"; "msgs'"; "parity" ]
          rows;
        match summary with
        | [ done_; failed; skipped ] ->
          Report.table
            ~columns:[ "farm done"; "farm failed"; "resume skipped" ]
            [ [ done_; failed; skipped ] ]
        | _ -> ());
  }
