(* Bench RG: the registry smoke sweep.

   One clean run of every protocol in [Csap.Protocol.registry] on each
   of two small families, with the entry's own invariant asserted — a
   non-zero failure column fails the figure. This is the "is everything
   wired" table: a protocol added to the registry shows up here (and in
   the SX/FX sweeps and the CLI) with no further plumbing. *)

module Gen = Csap_graph.Generators
module P = Csap.Protocol

let families =
  [
    ("K4", fun () -> Gen.complete 4 ~w:3);
    ( "random",
      fun () ->
        Gen.random_connected (Csap_graph.Rng.create 7) 10 ~extra_edges:8
          ~wmax:6 );
  ]

let family_job (fname, build) =
  {
    Report.label = fname;
    run =
      (fun () ->
        let g = build () in
        List.map
          (fun entry ->
            let (module M : P.S) = entry in
            let cfg = P.Run.make g in
            let o = P.execute entry cfg in
            let fail =
              match M.invariant cfg o with Ok () -> 0 | Error _ -> 1
            in
            [
              Report.Str fname;
              Report.Str M.name;
              Report.Str (P.category_name M.category);
              Report.Int o.P.Outcome.measures.Csap.Measures.comm;
              Report.Float o.P.Outcome.measures.Csap.Measures.time;
              Report.Int o.P.Outcome.measures.Csap.Measures.messages;
              Report.Int fail;
            ])
          P.registry);
  }

let rg () =
  {
    Report.id = "RG";
    title = "protocol registry smoke sweep (clean run + invariant, all entries)";
    jobs = List.map family_job families;
    render =
      (fun results ->
        Format.printf
          "%d registered protocols, one clean run each; the invariant \
           column counts oracle-check failures@."
          (List.length P.registry);
        Report.table
          ~columns:
            [ "family"; "protocol"; "category"; "comm"; "time"; "msgs"; "fail" ]
          (List.concat (Array.to_list results));
        Format.printf
          "shape check: fail = 0 everywhere — every registry entry runs \
           and passes its own oracle invariant on both families.@.");
  }
