(* Benches F4 and F9: the SPT algorithms table and the strip method
   (paper Figures 4 and 9). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap_graph.Params

let f4_row name build =
  Report.row_job name (fun () ->
      let g = build () in
      let p = P.compute g in
      let e = float_of_int p.P.script_e in
      let n = float_of_int p.P.n in
      let d = float_of_int p.P.script_d in
      let centr =
        (Csap.Centr_growth.run_spt g ~root:0).Csap.Centr_growth.measures
      in
      let spt_w =
        float_of_int
          (Csap_graph.Tree.total_weight (Csap_graph.Paths.spt g ~src:0))
      in
      let synch_full = Csap.Spt_synch.run g ~source:0 in
      let synch = synch_full.Csap.Spt_synch.measures in
      let recur =
        (Csap.Spt_recur.run g ~source:0
           ~strip:(Csap.Spt_recur.default_strip g))
          .Csap.Spt_recur.measures
      in
      let hyb = Csap.Spt_hybrid.run g ~source:0 in
      let centr_bound = n *. spt_w in
      ignore d;
      (* The synchronizer pays its C_p on every transformed pulse (4D + 4W
         of them after the Lemma 4.5 slowdown), so the bound uses that
         count. *)
      let pulses = float_of_int synch_full.Csap.Spt_synch.transformed_pulses in
      let synch_bound = e +. (pulses *. 2.0 *. n *. Report.log2 n /. 4.0) in
      [
        Report.Str name;
        Report.Int p.P.n;
        Report.Int p.P.script_d;
        Report.Int centr.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int centr.Csap.Measures.comm) centr_bound);
        Report.Int synch.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int synch.Csap.Measures.comm) synch_bound);
        Report.Int recur.Csap.Measures.comm;
        Report.Int hyb.Csap.Spt_hybrid.total_comm;
        Report.Str
          (match hyb.Csap.Spt_hybrid.winner with
          | Csap.Spt_hybrid.Synch -> "synch"
          | Csap.Spt_hybrid.Recur -> "recur");
      ])

let f4 () =
  let jobs =
    [
      f4_row "grid" (fun () -> Gen.grid 5 6 ~w:4);
      f4_row "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 8) 30 ~extra_edges:40
            ~wmax:10);
      f4_row "bkj" (fun () -> Gen.bkj_star_cycle 20 ~heavy:60);
      f4_row "chorded" (fun () -> Gen.chorded_cycle 24 ~chord_w:64);
    ]
  in
  {
    Report.id = "F4";
    title = "shortest path trees (Figure 4)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: SPT_centr O(n w(SPT)), SPT_synch O(E + D k n log n), \
           SPT_recur O(E^(1+eps)), SPT_hybrid min-combination@.";
        Report.table
          ~columns:
            [
              "family"; "n"; "D"; "centr"; "/bnd"; "synch"; "/bnd"; "recur";
              "hybrid"; "winner";
            ]
          (Report.all_rows results);
        Format.printf
          "shape check: centr and synch track their bounds; the hybrid's \
           total stays within a small factor of the better column.@.");
  }

(* --- F9: the strip method ---------------------------------------------- *)

let strips = [ 1; 2; 4; 8; 16; 32; 64; 128 ]

let f9_strip_job ?delay ~instance build strip =
  Report.row_job
    (Printf.sprintf "%s strip=%d" instance strip)
    (fun () ->
      let g = build () in
      let r = Csap.Spt_recur.run ?delay g ~source:0 ~strip in
      [
        Report.Int strip;
        Report.Int r.Csap.Spt_recur.strips;
        Report.Int r.Csap.Spt_recur.offer_comm;
        Report.Int r.Csap.Spt_recur.sync_comm;
        Report.Int r.Csap.Spt_recur.measures.Csap.Measures.comm;
        Report.Float r.Csap.Spt_recur.measures.Csap.Measures.time;
      ])

let f9_params_job ~instance build =
  Report.row_job
    (Printf.sprintf "%s params" instance)
    (fun () -> [ Report.Str (Format.asprintf "%a" P.pp (P.compute (build ()))) ])

let f9_columns = [ "strip"; "strips"; "offers"; "sync"; "total comm"; "time" ]

let f9 () =
  let build_a () = Gen.grid 7 7 ~w:6 in
  let build_b () =
    Gen.random_connected (Csap_graph.Rng.create 4) 49 ~extra_edges:80 ~wmax:12
  in
  let jobs =
    (f9_params_job ~instance:"A" build_a
    :: List.map (f9_strip_job ~instance:"A" build_a) strips)
    @ (f9_params_job ~instance:"B" build_b
      :: List.map
           (f9_strip_job ~delay:Csap_dsim.Delay.Near_zero ~instance:"B"
              build_b)
           strips)
  in
  let n_strips = List.length strips in
  {
    Report.id = "F9";
    title = "the strip method (Figure 9)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: slicing the D layers into strips trades synchronisation \
           against duplicated exploration work@.";
        (match results.(0) with
        | [ [ Report.Str params ] ] ->
          Format.printf "instance A: 7x7 grid, %s (normalised schedule)@."
            params
        | _ -> assert false);
        Report.table ~columns:f9_columns
          (Report.all_rows (Array.sub results 1 n_strips));
        Format.printf
          "under the delay = weight schedule offers arrive in distance \
           order, so no corrections occur and only the sync cost varies.@.";
        (match results.(n_strips + 1) with
        | [ [ Report.Str params ] ] ->
          Format.printf
            "@.instance B: random, %s (adversarial near-zero delays)@."
            params
        | _ -> assert false);
        Report.table ~columns:f9_columns
          (Report.all_rows (Array.sub results (n_strips + 2) n_strips));
        Format.printf
          "shape check: small strips pay synchronisation, large strips pay \
           correction traffic (offers) under adversarial scheduling - the \
           total has its minimum at an interior strip depth, the balance \
           the recursion of [Awe89] automates.@.");
  }
