(* Bench AX: oblivious-worst vs adaptive-worst cost per protocol.

   The schedule sweep (figure SX) maximises over oblivious schedules —
   delay assignments fixed before the run. An adaptive adversary
   observes the execution (pending messages per edge, delivered totals,
   the clock) and picks each delay at send time, so its reachable
   executions are a superset: the adversary-class worst case can only
   go up. This figure runs the clean roster under both batteries and
   asserts, per row, that the adversary-class worst-case communication
   (the max over both batteries) is >= the oblivious worst case, with
   zero invariant failures — and that every adaptive run passes the
   replay audit, i.e. its decision trace re-executes bit-identically as
   an oblivious schedule (the certificate that the adaptive worst case
   is a genuine execution, not an artifact). *)

module Gen = Csap_graph.Generators
module S = Csap_sched.Sched_explore

let seeded = 8

let oblivious_schedules g =
  S.seeded_schedules seeded @ S.adversarial_schedules g

let targets () = S.registry_targets ()

(* One job per family: the roster under the oblivious battery, then
   under the adaptive roster with the replay audit on. Both sweeps use
   a sequential pool — jobs already shard over the harness pool. *)
let family_job name build =
  {
    Report.label = name;
    run =
      (fun () ->
        let g = build () in
        let pool () = Csap_pool.create ~domains:1 () in
        let oblivious =
          S.explore ~pool:(pool ()) ~trace_dir:"adversary-traces" g
            ~targets:(targets ()) ~schedules:(oblivious_schedules g)
        in
        let adaptive =
          S.explore ~pool:(pool ()) ~trace_dir:"adversary-traces"
            ~check_replay:true g ~targets:(targets ())
            ~schedules:(S.adaptive_schedules ())
        in
        List.map2
          (fun (o : S.summary) (a : S.summary) ->
            let class_comm = max o.S.worst_comm a.S.worst_comm in
            let fails = o.S.failures + a.S.failures in
            [
              Report.Str name;
              Report.Str o.S.target_name;
              Report.Int fails;
              Report.Int o.S.worst_comm;
              Report.Int a.S.worst_comm;
              Report.Int class_comm;
              Report.Float o.S.worst_time;
              Report.Float a.S.worst_time;
              (* adaptive >= oblivious per row, replay certified *)
              Report.Str
                (if fails = 0 && class_comm >= o.S.worst_comm then "ok"
                 else "FAIL");
            ])
          oblivious adaptive);
  }

let ax () =
  let jobs =
    [
      family_job "grid" (fun () -> Gen.grid 4 4 ~w:4);
      family_job "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 11) 14 ~extra_edges:16
            ~wmax:8);
      family_job "chorded" (fun () -> Gen.chorded_cycle 10 ~chord_w:16);
    ]
  in
  {
    Report.id = "AX";
    title = "adaptive vs oblivious adversaries (worst case per class)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "%d seeded + 3 structured oblivious schedules vs the adaptive \
           roster (greedy-commax, time-stretcher), every adaptive run \
           replay-audited against its own decision trace@."
          seeded;
        let rows = List.concat (Array.to_list results) in
        Report.table
          ~columns:
            [
              "family"; "target"; "fail"; "obl comm"; "adp comm";
              "class comm"; "obl time"; "adp time"; "verdict";
            ]
          rows;
        let bad =
          List.filter
            (fun row ->
              match List.nth row 8 with
              | Report.Str "ok" -> false
              | _ -> true)
            rows
        in
        Format.printf
          "shape check: verdict = ok on every row — zero invariant/replay \
           failures and adversary-class worst comm >= oblivious worst comm \
           (adaptive schedules only widen the quantifier).@.";
        if bad <> [] then
          failwith
            (Printf.sprintf "AX: %d row(s) violate adaptive >= oblivious"
               (List.length bad)));
  }
