(* Bench SX: the schedule-adversary sweep.

   The paper's measures quantify over every admissible schedule (delays
   anywhere in (0, w(e)]), so each protocol is run under a battery of
   seeded and structured-adversarial schedules; the table reports the
   worst time and weighted communication observed, with the invariant
   checks (outputs equal the sequential oracles) asserted on every run —
   a failure count other than 0 fails the figure. The CI schedule-sweep
   job runs this figure on small instances and uploads the JSONL traces
   of any failing schedule. *)

module Gen = Csap_graph.Generators
module S = Csap_sched.Sched_explore

let seeded = 8

let schedules g = S.seeded_schedules seeded @ S.adversarial_schedules g

(* The clean-sweep roster comes straight from the protocol registry. *)
let targets _g = S.registry_targets ()

(* One job per family: the whole target battery under the whole schedule
   battery. Runs already shard over the harness pool at the job level, so
   the explorer itself stays sequential within the job. *)
let family_job name build =
  {
    Report.label = name;
    run =
      (fun () ->
        let g = build () in
        let summaries =
          S.explore
            ~pool:(Csap_pool.create ~domains:1 ())
            ~trace_dir:"sched-traces" g ~targets:(targets g)
            ~schedules:(schedules g)
        in
        List.map
          (fun (s : S.summary) ->
            [
              Report.Str name;
              Report.Str s.S.target_name;
              Report.Int (Array.length s.S.runs);
              Report.Int s.S.failures;
              Report.Int s.S.worst_comm;
              Report.Float s.S.worst_time;
            ])
          summaries);
  }

(* The F9 follow-up: the strip method's interior-minimum row re-examined
   adversarially — worst case over the schedule battery per strip depth,
   instead of the single schedule Figure 9 fixes. *)
let strip_job build strip =
  Report.row_job
    (Printf.sprintf "strip=%d adversarial" strip)
    (fun () ->
      let g = build () in
      let summaries =
        S.explore
          ~pool:(Csap_pool.create ~domains:1 ())
          ~trace_dir:"sched-traces" g
          ~targets:[ S.target_for ~root:0 ~strip "spt-recur" ]
          ~schedules:(schedules g)
      in
      let s = List.hd summaries in
      [
        Report.Int strip;
        Report.Int (Array.length s.S.runs);
        Report.Int s.S.failures;
        Report.Int s.S.worst_comm;
        Report.Float s.S.worst_time;
      ])

let sx () =
  let strip_build () = Gen.grid 5 5 ~w:6 in
  let jobs =
    [
      family_job "grid" (fun () -> Gen.grid 4 4 ~w:4);
      family_job "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 11) 14 ~extra_edges:16
            ~wmax:8);
      family_job "chorded" (fun () -> Gen.chorded_cycle 10 ~chord_w:16);
    ]
    @ List.map (strip_job strip_build) [ 1; 4; 32 ]
  in
  {
    Report.id = "SX";
    title = "schedule-adversary sweep (worst case over schedules)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "%d seeded + 3 structured-adversarial schedules per protocol; \
           outputs checked against sequential oracles on every run@."
          seeded;
        Report.table
          ~columns:[ "family"; "target"; "K"; "fail"; "worst comm"; "worst time" ]
          (List.concat (Array.to_list (Array.sub results 0 3)));
        Format.printf
          "strip method (5x5 grid, w=6), worst case over the same battery:@.";
        Report.table
          ~columns:[ "strip"; "K"; "fail"; "worst comm"; "worst time" ]
          (List.concat
             (Array.to_list (Array.sub results 3 (Array.length results - 3))));
        Format.printf
          "shape check: fail = 0 everywhere (schedule-invariant outputs); \
           worst-case cost dominates any single-schedule row of F9.@.");
  }
