(* Benches F2, F7, F8: the connectivity table and the lower-bound family
   (paper Figures 2, 7, 8). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap_graph.Params

(* --- F2: Figure 2 — the connectivity algorithms table ----------------- *)

let run_row name build =
  Report.row_job name (fun () ->
      let g = build () in
      let p = P.compute g in
      let e = float_of_int p.P.script_e in
      let nv = float_of_int (p.P.n * p.P.script_v) in
      let flood = (Csap.Flood.run g ~source:0).Csap.Flood.measures in
      let dfs = (Csap.Dfs_token.run g ~root:0).Csap.Dfs_token.measures in
      let hyb = (Csap.Con_hybrid.run g ~root:0).Csap.Con_hybrid.measures in
      let minimum = Float.min e nv in
      [
        Report.Str name;
        Report.Int p.P.n;
        Report.Int p.P.script_e;
        Report.Int (p.P.n * p.P.script_v);
        Report.Int flood.Csap.Measures.comm;
        Report.Float (Report.ratio (float_of_int flood.Csap.Measures.comm) e);
        Report.Int dfs.Csap.Measures.comm;
        Report.Float (Report.ratio (float_of_int dfs.Csap.Measures.comm) e);
        Report.Int hyb.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int hyb.Csap.Measures.comm) minimum);
      ])

let f2 () =
  let jobs =
    [
      (* E-side of the min: sparse light graphs. *)
      run_row "path" (fun () -> Gen.path 48 ~w:2);
      run_row "grid" (fun () -> Gen.grid 6 8 ~w:3);
      run_row "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 3) 48 ~extra_edges:60
            ~wmax:8);
      (* nV-side of the min: the lower-bound family. *)
      run_row "G_n x=6" (fun () -> Gen.lower_bound_gn 20 ~x:6);
      run_row "G_n x=8" (fun () -> Gen.lower_bound_gn 20 ~x:8);
    ]
  in
  {
    Report.id = "F2";
    title = "connectivity / spanning tree (Figure 2)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: DFS O(E), CON_flood O(E), CON_hybrid O(min{E, nV}); lower \
           bound Omega(min{E, nV})@.";
        Report.table
          ~columns:
            [
              "family"; "n"; "E"; "nV"; "flood"; "/E"; "dfs"; "/E"; "hybrid";
              "/min";
            ]
          (Report.all_rows results);
        Format.printf
          "shape check: flood and dfs track E everywhere; hybrid tracks \
           min{E,nV} and wins exactly on G_n.@.");
  }

(* --- F7: Figure 7 — Omega(n V) on the family G_n ---------------------- *)

let f7 () =
  let x = 8 in
  let jobs =
    List.map
      (fun n ->
        Report.row_job
          (Printf.sprintf "n=%d" n)
          (fun () ->
            let r = Csap.Lower_bound.run_on_gn ~n ~x in
            let lower = Csap.Lower_bound.id_ferrying_cost ~n ~x in
            [
              Report.Int n;
              Report.Int r.Csap.Lower_bound.script_e;
              Report.Int r.Csap.Lower_bound.n_times_v;
              Report.Int lower;
              Report.Int r.Csap.Lower_bound.flood_comm;
              Report.Int r.Csap.Lower_bound.dfs_comm;
              Report.Int r.Csap.Lower_bound.hybrid_comm;
              Report.Float
                (Report.ratio
                   (float_of_int r.Csap.Lower_bound.hybrid_comm)
                   (float_of_int lower));
            ]))
      [ 8; 12; 16; 20; 24; 32 ]
  in
  {
    Report.id = "F7";
    title = "the lower-bound family G_n (Figure 7)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: any connectivity algorithm pays Omega(min{E, nV}) = \
           Omega(n^2 X) on G_n (Lemma 7.2)@.";
        Report.table
          ~columns:
            [
              "n"; "E"; "nV"; "Omega(nV) term"; "flood"; "dfs"; "hybrid";
              "hybrid/LB";
            ]
          (Report.all_rows results);
        Format.printf
          "shape check: hybrid/LB stays a bounded factor above 1 — the \
           upper bound meets the Omega(nV) lower bound; flood and dfs blow \
           up with E = Theta(n X^4).@.");
  }

(* --- F8: Figure 8 — the indistinguishability construction ------------- *)

let f8 () =
  let jobs =
    List.concat_map
      (fun n ->
        List.filter_map
          (fun i ->
            if i < n / 2 then
              Some
                (Report.row_job
                   (Printf.sprintf "n=%d i=%d" n i)
                   (fun () ->
                     [
                       Report.Int n;
                       Report.Int i;
                       Report.Int
                         (Csap.Lower_bound.check_split_indistinguishable ~n
                            ~i ~x:4);
                       Report.Int (n + 1 - (2 * (i + 1)));
                     ]))
            else None)
          [ 1; 3; 5; 7 ])
      [ 12; 20 ]
  in
  {
    Report.id = "F8";
    title = "the split graphs G_n^i (Figure 8)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: G_n and G_n^i agree except at bypass pair i, so \
           executions that never join pair i's information coincide (Lemma \
           7.1)@.";
        Report.table
          ~columns:[ "n"; "i"; "edge diff"; "path hops to join ids" ]
          (Report.all_rows results);
        Format.printf
          "every split differs in exactly 3 edges; joining pair i's ids \
           forces messages across n+1-2i light edges — summing gives the \
           Omega(n^2 X) bound of F7.@.");
  }
