(* Bechamel micro-benchmarks: per-operation cost (with OLS fit) of the
   sequential kernels behind each figure — one Test.make per table —
   plus before/after pairs for the hot-path work: Engine.send's edge
   lookup (adjacency scan vs the graph's sorted index) and the
   all-sources diameter (lazy-deletion tuple heap vs the indexed heap
   with decrease_key). Always run on the main domain. *)

(* The boxed event queue is benchmarked here on purpose — it is the
   "before" half of the send-path pair. *)
[@@@alert "-boxed_oracle"]

open Bechamel

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module E = Csap_dsim.Engine

let graph =
  lazy
    (Gen.random_connected (Csap_graph.Rng.create 77) 64 ~extra_edges:128
       ~wmax:32)

let bkj = lazy (Gen.bkj_star_cycle 48 ~heavy:200)

(* Before/after instances named by the acceptance criteria: a dense
   n = 96 network for the send-heavy flood, and an n = 256 sparse random
   network for the n-Dijkstra diameter sweep. *)
let dense96 = lazy (Gen.complete 96 ~w:4)

let sparse256 =
  lazy
    (Gen.random_connected (Csap_graph.Rng.create 9) 256 ~extra_edges:512
       ~wmax:32)

(* Instances for the PR-2 before/after pairs: the CSR relaxation scan
   (flat rows vs boxed tuples) at n = 256, the pool-sharded all-sources
   extrema at n = 512 over >= 4 domains, and the engine reset-vs-recreate
   multi-seed trial loop. *)
let sparse512 =
  lazy
    (Gen.random_connected (Csap_graph.Rng.create 13) 512 ~extra_edges:1024
       ~wmax:32)

let extrema_pool = lazy (Csap_pool.create ~domains:4 ())

type msg = Wave

(* A bare flood (no tree bookkeeping): ~2 sends per edge, so the run cost
   is the per-message hot path — Engine.send's edge lookup plus two event
   queue operations. [lookup]/[queue] select the historical or the
   optimised implementation of each. *)
let flood_with lookup queue g =
  let n = G.n g in
  let eng = E.create ~edge_lookup:lookup ~event_queue:queue g in
  let reached = Array.make n false in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then E.send eng ~src:v ~dst:u Wave)
  in
  for v = 0 to n - 1 do
    E.set_handler eng v (fun ~src Wave ->
        if not reached.(v) then begin
          reached.(v) <- true;
          forward v ~except:src
        end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      reached.(0) <- true;
      forward 0 ~except:(-1));
  ignore (E.run eng)

(* The reset-vs-recreate trial loop: [trials] floods over the same graph
   under per-trial seeded delays. The reset path reuses one engine
   (rewound between trials); the recreate path rebuilds the O(n + m)
   engine state every trial — the before/after pair for Engine.reset. *)
let trials = 8

let flood_trials ~reuse g =
  let engine = if reuse then Some (Csap.Flood.make_engine g) else None in
  let acc = ref 0 in
  for seed = 1 to trials do
    let delay = Csap_dsim.Delay.Uniform (Csap_graph.Rng.create seed) in
    let r = Csap.Flood.run ~delay ?engine g ~source:0 in
    acc := !acc + r.Csap.Flood.measures.Csap.Measures.comm
  done;
  !acc

(* One-shot allocation gauge for the send path: arm and run a flood
   once to warm the engine (queue capacity grown, handler tables
   filled), reset, re-arm, then measure minor-heap bytes across the
   second run and divide by its message count. With growth pre-paid the
   quotient is the true per-message footprint of [Engine.send] plus the
   queue push/pop — ~0 B for the packed SOA queue, ~10 words for the
   boxed oracle. *)
let flood_bytes_per_msg queue g =
  let n = G.n g in
  let eng = E.create ~edge_lookup:E.Indexed ~event_queue:queue g in
  let reached = Array.make n false in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then E.send eng ~src:v ~dst:u Wave)
  in
  let arm () =
    Array.fill reached 0 n false;
    for v = 0 to n - 1 do
      E.set_handler eng v (fun ~src Wave ->
          if not reached.(v) then begin
            reached.(v) <- true;
            forward v ~except:src
          end)
    done;
    E.schedule eng ~delay:0.0 (fun () ->
        reached.(0) <- true;
        forward 0 ~except:(-1))
  in
  arm ();
  ignore (E.run eng);
  E.reset eng;
  arm ();
  let w0 = Gc.minor_words () in
  ignore (E.run eng);
  let w1 = Gc.minor_words () in
  let msgs = (E.metrics eng).Csap_dsim.Metrics.messages in
  (w1 -. w0) *. 8.0 /. float_of_int (max 1 msgs)

(* The pre-index diameter: n independent lazy-deletion Dijkstras, fresh
   buffers each time. *)
let diameter_lazy g =
  let n = G.n g in
  let best = ref 0 in
  for src = 0 to n - 1 do
    let s = Csap_graph.Paths.dijkstra_lazy g ~src in
    Array.iter
      (fun d -> if d <> max_int && d > !best then best := d)
      s.Csap_graph.Paths.dist
  done;
  !best

let tests =
  [
    (* F1/F5: the SLT construction. *)
    Test.make ~name:"f5: slt-build"
      (Staged.stage (fun () ->
           ignore (Csap.Slt.build ~q:2.0 (Lazy.force bkj) ~root:0)));
    (* F3: the sequential MST reference. *)
    Test.make ~name:"f3: mst-prim"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Mst.prim (Lazy.force graph) ~root:0)));
    (* F4: the sequential SPT reference. *)
    Test.make ~name:"f4: dijkstra"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.dijkstra (Lazy.force graph) ~src:0)));
    (* F2/F7: the lower-bound family generator. *)
    Test.make ~name:"f7: gn-generator"
      (Staged.stage (fun () ->
           ignore (Gen.lower_bound_gn 32 ~x:8)));
    (* CS: the tree edge-cover preprocessing of gamma*. *)
    Test.make ~name:"cs: tree-edge-cover"
      (Staged.stage (fun () ->
           ignore (Csap_cover.Tree_cover.build (Gen.chorded_cycle 16 ~chord_w:64))));
    (* SY: the per-level cluster partition of gamma_w. *)
    Test.make ~name:"sy: partition"
      (Staged.stage (fun () ->
           let g = Lazy.force graph in
           let edges = List.init (Csap_graph.Graph.m g) Fun.id in
           ignore (Csap.Synchronizer.Partition.build g ~edges ~k:2)));
    (* CT: one controlled-flood event loop (end to end, small). *)
    Test.make ~name:"ct: flood-run"
      (Staged.stage (fun () ->
           ignore (Csap.Flood.run (Lazy.force graph) ~source:0)));
    (* Before/after: the engine's per-message hot path (adjacency-scan
       lookup + boxed event heap vs indexed lookup + packed heap). *)
    Test.make ~name:"send: flood dense96 seed-path"
      (Staged.stage (fun () ->
           flood_with E.Scan E.Boxed (Lazy.force dense96)));
    Test.make ~name:"send: flood dense96 hot-path"
      (Staged.stage (fun () ->
           flood_with E.Indexed E.Packed (Lazy.force dense96)));
    (* Before/after: the event queue alone (both sides use the indexed
       edge lookup) — boxed record heap vs the allocation-free SOA
       queue. *)
    Test.make ~name:"engine: send-path boxed"
      (Staged.stage (fun () ->
           flood_with E.Indexed E.Boxed (Lazy.force dense96)));
    Test.make ~name:"engine: send-path soa"
      (Staged.stage (fun () ->
           flood_with E.Indexed E.Packed (Lazy.force dense96)));
    (* Before/after: the diameter sweep's Dijkstra core. *)
    Test.make ~name:"spt: diameter n256 lazy"
      (Staged.stage (fun () -> ignore (diameter_lazy (Lazy.force sparse256))));
    Test.make ~name:"spt: diameter n256 indexed"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.diameter (Lazy.force sparse256))));
    (* Before/after: the relaxation scan — boxed tuple rows vs flat CSR. *)
    Test.make ~name:"csr: dijkstra n256 tuple"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.dijkstra_tuple (Lazy.force sparse256) ~src:0)));
    Test.make ~name:"csr: dijkstra n256 flat"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.dijkstra (Lazy.force sparse256) ~src:0)));
    (* Before/after: the n-source extrema sweep, sequential vs sharded
       over the 4-domain pool. *)
    Test.make ~name:"extrema: n512 seq"
      (Staged.stage (fun () ->
           ignore (Csap_graph.Paths.extrema_seq (Lazy.force sparse512))));
    Test.make ~name:"extrema: n512 par4"
      (Staged.stage (fun () ->
           ignore
             (Csap_graph.Paths.extrema
                ~pool:(Lazy.force extrema_pool)
                (Lazy.force sparse512))));
    (* Before/after: multi-seed trial loops — fresh engine per trial vs
       one engine rewound by Engine.reset. *)
    Test.make ~name:"engine: trial-loop recreate"
      (Staged.stage (fun () ->
           ignore (flood_trials ~reuse:false (Lazy.force dense96))));
    Test.make ~name:"engine: trial-loop reset"
      (Staged.stage (fun () ->
           ignore (flood_trials ~reuse:true (Lazy.force dense96))));
  ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let find_ns rows needle =
  match List.find_opt (fun (name, _) -> contains name needle) rows with
  | Some (_, ns) -> ns
  | None -> nan

(* Runs the suite, prints the tables and returns every (name, value) row —
   kernels in ns/run plus the derived speedup ratios — for the JSON dump. *)
let run () =
  Report.heading "MICRO" "bechamel micro-benchmarks (sequential kernels)";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let test = Test.make_grouped ~name:"csap" tests in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Report.table ~columns:[ "kernel"; "ns/run" ]
    (List.map (fun (name, ns) -> [ Report.Str name; Report.Float ns ]) rows);
  let speedups =
    [
      ( "speedup: engine-send flood dense96 (seed/hot)",
        find_ns rows "flood dense96 seed-path"
        /. find_ns rows "flood dense96 hot-path" );
      ( "speedup: diameter n256 (lazy/indexed)",
        find_ns rows "diameter n256 lazy" /. find_ns rows "diameter n256 indexed"
      );
      ( "speedup: dijkstra n256 (tuple/csr)",
        find_ns rows "dijkstra n256 tuple" /. find_ns rows "dijkstra n256 flat"
      );
      ( "speedup: extrema n512 (seq/parallel)",
        find_ns rows "extrema: n512 seq" /. find_ns rows "extrema: n512 par4" );
      ( "speedup: engine trial-loop (recreate/reset)",
        find_ns rows "trial-loop recreate" /. find_ns rows "trial-loop reset" );
      ( "speedup: engine send-path (boxed/soa)",
        find_ns rows "send-path boxed" /. find_ns rows "send-path soa" );
    ]
  in
  Report.subheading "hot-path before/after (ratios > 1 mean faster now)";
  Report.table ~columns:[ "workload"; "speedup" ]
    (List.map (fun (name, x) -> [ Report.Str name; Report.Float x ]) speedups);
  (* One-shot gauges (not bechamel-timed): minor-heap bytes allocated per
     message on the warmed send path. CI holds the soa figure to a hard
     ceiling so a boxing regression anywhere on the path fails fast. *)
  let gauges =
    [
      ( "alloc: send-path boxed bytes/msg",
        flood_bytes_per_msg E.Boxed (Lazy.force dense96) );
      ( "alloc: send-path soa bytes/msg",
        flood_bytes_per_msg E.Packed (Lazy.force dense96) );
    ]
  in
  Report.subheading "send-path allocation (bytes per message, warmed engine)";
  Report.table ~columns:[ "gauge"; "bytes/msg" ]
    (List.map (fun (name, x) -> [ Report.Str name; Report.Float x ]) gauges);
  rows @ speedups @ gauges
