(* Bench CT: the controller's overhead envelope and containment
   (Section 5, Corollary 5.1). *)

module E = Csap_dsim.Engine
module G = Csap_graph.Graph
module Gen = Csap_graph.Generators

type fmsg = Wave

let controlled_flood g ~threshold ~buggy =
  let eng = E.create g in
  let aborted = ref false in
  let ctl =
    Csap.Controller.create ~engine:eng ~inject:Fun.id ~initiator:0 ~threshold
      ~on_abort:(fun () -> aborted := true)
      ()
  in
  let seen = Array.make (G.n g) false in
  let forward v ~except =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then Csap.Controller.send ctl ~src:v ~dst:u Wave)
  in
  for v = 0 to G.n g - 1 do
    E.set_handler eng v (fun ~src wire ->
        match Csap.Controller.handle ctl ~me:v ~src wire with
        | None -> ()
        | Some Wave ->
          if buggy then forward v ~except:(-1)
          else if not seen.(v) then begin
            seen.(v) <- true;
            forward v ~except:src
          end)
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      seen.(0) <- true;
      forward 0 ~except:(-1));
  let _ = E.run ~max_events:500_000 eng in
  (E.metrics eng, ctl, !aborted)

let ct () =
  let envelope_jobs =
    List.map
      (fun n ->
        Report.row_job
          (Printf.sprintf "grid %dx%d" n n)
          (fun () ->
            let g = Gen.grid n n ~w:4 in
            let c_pi = 2 * G.total_weight g in
            let m, ctl, aborted =
              controlled_flood g ~threshold:(2 * c_pi) ~buggy:false
            in
            let c = float_of_int c_pi in
            let envelope = c *. Report.log2 c *. Report.log2 c in
            [
              Report.Int (G.n g);
              Report.Int c_pi;
              Report.Int (Csap.Controller.spent ctl);
              Report.Int m.Csap_dsim.Metrics.weighted_comm;
              Report.Float
                (Report.ratio
                   (float_of_int m.Csap_dsim.Metrics.weighted_comm)
                   c);
              Report.Float
                (Report.ratio
                   (float_of_int m.Csap_dsim.Metrics.weighted_comm)
                   envelope);
              Report.Str (if aborted then "ABORT" else "ok");
            ]))
      [ 3; 4; 5; 6; 8 ]
  in
  let containment_jobs =
    List.map
      (fun threshold ->
        Report.row_job
          (Printf.sprintf "threshold=%d" threshold)
          (fun () ->
            let g = Gen.grid 4 4 ~w:3 in
            let m, ctl, aborted = controlled_flood g ~threshold ~buggy:true in
            [
              Report.Int threshold;
              Report.Int (Csap.Controller.spent ctl);
              Report.Int m.Csap_dsim.Metrics.weighted_comm;
              Report.Str (if aborted then "suspended" else "ran away!");
            ]))
      [ 50; 200; 800; 3200 ]
  in
  let n_env = List.length envelope_jobs in
  {
    Report.id = "CT";
    title = "the controller (Section 5)";
    jobs = envelope_jobs @ containment_jobs;
    render =
      (fun results ->
        Format.printf
          "paper: c_phi = O(c_pi log^2 c_pi) (Cor 5.1); divergent \
           executions suspended near the threshold@.";
        Report.subheading "correct executions: overhead envelope";
        Report.table
          ~columns:
            [
              "n"; "c_pi"; "spent"; "c_phi"; "c_phi/c_pi"; "/(c log^2 c)";
              "";
            ]
          (Report.all_rows (Array.sub results 0 n_env));
        Report.subheading "divergent executions: containment";
        Report.table
          ~columns:[ "threshold"; "spent"; "total comm"; "outcome" ]
          (Report.all_rows
             (Array.sub results n_env (Array.length results - n_env)));
        Format.printf
          "shape check: c_phi/c_pi grows slower than log^2 c_pi; divergent \
           runs spend at most their threshold before suspension.@.");
  }
