(* Benches F1, F5, F6: global function computation and the shallow-light
   tree algorithm (paper Figures 1, 5, 6). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree
module P = Csap_graph.Params

(* Family builders are thunks so each (family, n) job constructs only its
   own instance, inside the job, on its own domain. *)
let families n =
  [
    ("grid", fun () -> Gen.grid (max 2 (n / 8)) 8 ~w:4);
    ( "geometric",
      fun () ->
        Gen.random_geometric (Csap_graph.Rng.create 11) n ~degree:4
          ~scale:200.0 );
    ( "random",
      fun () ->
        Gen.random_connected (Csap_graph.Rng.create 12) n ~extra_edges:(2 * n)
          ~wmax:16 );
    ("bkj star-cycle", fun () -> Gen.bkj_star_cycle (n - 1) ~heavy:(4 * n));
  ]

(* --- F1: Figure 1 — global function computation ---------------------- *)

let f1 () =
  let jobs =
    List.concat_map
      (fun n ->
        List.map
          (fun (name, build) ->
            Report.row_job
              (Printf.sprintf "%s n=%d" name n)
              (fun () ->
                let g = build () in
                let p = P.compute g in
                let values = Array.init (G.n g) (fun i -> i) in
                let r =
                  Csap.Global_func.run_optimal ~q:2.0 g ~root:0 ~values
                    Csap.Global_func.sum
                in
                let m = r.Csap.Global_func.measures in
                [
                  Report.Str name;
                  Report.Int (G.n g);
                  Report.Int p.P.script_v;
                  Report.Int p.P.script_d;
                  Report.Int m.Csap.Measures.comm;
                  Report.Float
                    (Report.ratio
                       (float_of_int m.Csap.Measures.comm)
                       (float_of_int p.P.script_v));
                  Report.Float m.Csap.Measures.time;
                  Report.Float
                    (Report.ratio m.Csap.Measures.time
                       (float_of_int p.P.script_d));
                ]))
          (families n))
      [ 32; 64; 96 ]
  in
  {
    Report.id = "F1";
    title = "global function computation (Figure 1)";
    jobs;
    render =
      (fun results ->
        Format.printf
          "paper: communication Theta(V), time Theta(D) (Thm 2.1 + Cor \
           2.3)@.";
        Report.table
          ~columns:
            [
              "family"; "n"; "V"; "D"; "comm"; "comm/V"; "time"; "time/D";
            ]
          (Report.all_rows results);
        Format.printf
          "shape check: comm/V and time/D stay bounded (upper bound) and >= \
           1 (lower bound Thm 2.1).@.");
  }

(* --- F5: Figure 5 — the SLT trade-off --------------------------------- *)

let f5 () =
  (* Spokes ~ k/3 make the MST genuinely deep relative to D while the SPT
     stays genuinely heavy relative to V - both extremes violate a bound.
     The instance is shared by every job, so its parameters are memoized
     once. *)
  let g = Gen.bkj_star_cycle 48 ~heavy:16 in
  let params_job =
    Report.row_job "instance-params" (fun () ->
        [ Report.Str (Format.asprintf "%a" P.pp (P.compute g)) ])
  in
  let q_jobs =
    List.map
      (fun q ->
        Report.row_job
          (Printf.sprintf "q=%g" q)
          (fun () ->
            let p = P.compute g in
            let slt = Csap.Slt.build ~q g ~root:0 in
            let w = Tree.total_weight slt.Csap.Slt.tree in
            let h = Tree.height slt.Csap.Slt.tree in
            [
              Report.Float q;
              Report.Int w;
              Report.Float
                (Report.ratio (float_of_int w) (float_of_int p.P.script_v));
              Report.Float (1.0 +. (2.0 /. q));
              Report.Int h;
              Report.Float
                (Report.ratio (float_of_int h) (float_of_int p.P.script_d));
              Report.Float ((2.0 *. q) +. 1.0);
            ]))
      [ 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 ]
  in
  let extremes_job =
    Report.row_job "extremes" (fun () ->
        let spt = Csap_graph.Paths.spt g ~src:0 in
        let mst = Csap_graph.Mst.prim g ~root:0 in
        [
          Report.Int (Tree.total_weight spt);
          Report.Int (Tree.height spt);
          Report.Int (Tree.total_weight mst);
          Report.Int (Tree.height mst);
        ])
  in
  {
    Report.id = "F5";
    title = "shallow-light tree trade-off (Figure 5)";
    jobs = (params_job :: q_jobs) @ [ extremes_job ];
    render =
      (fun results ->
        Format.printf
          "paper: w(T) <= (1 + 2/q) V (Lemma 2.4), depth O(q) D (Lemma \
           2.5)@.";
        (match results.(0) with
        | [ [ Report.Str params ] ] ->
          Format.printf "instance: bkj star-cycle, %s@." params
        | _ -> assert false);
        let rows =
          Report.all_rows (Array.sub results 1 (Array.length results - 2))
        in
        Report.table
          ~columns:
            [
              "q"; "w(T)"; "w(T)/V"; "<=1+2/q"; "height"; "height/D";
              "<=2q+1";
            ]
          rows;
        (match results.(Array.length results - 1) with
        | [
         [ Report.Int spt_w; Report.Int spt_h; Report.Int mst_w;
           Report.Int mst_h ];
        ] ->
          Format.printf "extremes: SPT w=%d h=%d | MST w=%d h=%d@." spt_w
            spt_h mst_w mst_h
        | _ -> assert false);
        Format.printf
          "shape check: w(T)/V falls with q, height/D grows with q; both \
           within their bound columns.@.");
  }

(* --- F6: Figure 6 — a traced run of the SLT breakpoint scan ----------- *)

let f6 () =
  let trace_job =
    Report.row_job "trace" (fun () ->
        let g = Gen.bkj_star_cycle 11 ~heavy:40 in
        let slt = Csap.Slt.build ~q:1.0 g ~root:0 in
        let buf = Buffer.create 512 in
        let ppf = Format.formatter_of_buffer buf in
        Format.fprintf ppf "instance: 12-vertex bkj star-cycle, q = 1@.";
        Format.fprintf ppf "euler line (v(i)): ";
        Array.iter (fun v -> Format.fprintf ppf "%d " v) slt.Csap.Slt.line;
        Format.fprintf ppf "@.breakpoints (mileage indices): ";
        List.iter
          (fun b -> Format.fprintf ppf "%d " b)
          slt.Csap.Slt.breakpoints;
        Format.fprintf ppf "@.SPT paths grafted onto the MST: ";
        List.iter
          (fun (a, b) -> Format.fprintf ppf "(%d->%d) " a b)
          slt.Csap.Slt.added_paths;
        Format.fprintf ppf "@.result: w(T)=%d height=%d (MST w=%d, SPT h=%d)@."
          (Tree.total_weight slt.Csap.Slt.tree)
          (Tree.height slt.Csap.Slt.tree)
          (Tree.total_weight slt.Csap.Slt.mst)
          (Tree.height slt.Csap.Slt.spt);
        (* The distributed construction of Theorem 2.7 on the same
           instance. *)
        let d = Csap.Slt_distributed.run ~q:1.0 g ~root:0 in
        Format.fprintf ppf
          "distributed construction (Thm 2.7): same tree weight %d, comm \
           %d, comm / (V n^2) = %.2f"
          (Tree.total_weight d.Csap.Slt_distributed.tree)
          d.Csap.Slt_distributed.measures.Csap.Measures.comm
          (Report.ratio
             (float_of_int
                d.Csap.Slt_distributed.measures.Csap.Measures.comm)
             (float_of_int (Csap_graph.Mst.weight g * 12 * 12)));
        Format.pp_print_flush ppf ();
        [ Report.Str (Buffer.contents buf) ])
  in
  {
    Report.id = "F6";
    title = "SLT example run (Figure 6)";
    jobs = [ trace_job ];
    render =
      (fun results ->
        match results.(0) with
        | [ [ Report.Str trace ] ] -> Format.printf "%s@." trace
        | _ -> assert false);
  }
