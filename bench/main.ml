(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md section 3 for the index).

   Figures declare independent jobs (see [Report.figure]); the
   work-stealing [Csap_pool] runs them on OCaml 5 domains, then every
   figure is rendered in declaration order from the collected rows — so
   the printed tables are byte-identical whatever the parallelism.
   Per-job wall-clock times, per-domain pool busy times and all table
   cells are also dumped to BENCH_RESULTS.json.

   Usage:
     dune exec bench/main.exe                 # all figures, parallel
     dune exec bench/main.exe f3 cs           # selected figures
     dune exec bench/main.exe micro           # bechamel micro-benchmarks
     dune exec bench/main.exe -- --seq        # sequential (same output)
     dune exec bench/main.exe -- -j 4         # pool width
     dune exec bench/main.exe -- --json PATH  # result file (--no-json to skip) *)

let benches =
  [
    ("f1", Bench_trees.f1);
    ("f2", Bench_connectivity.f2);
    ("f3", Bench_mst.f3);
    ("f4", Bench_spt.f4);
    ("f5", Bench_trees.f5);
    ("f6", Bench_trees.f6);
    ("f7", Bench_connectivity.f7);
    ("f8", Bench_connectivity.f8);
    ("f9", Bench_spt.f9);
    ("cs", Bench_sync.cs);
    ("sy", Bench_sync.sy);
    ("ct", Bench_ctrl.ct);
    ("sx", Bench_sched.sx);
    ("ax", Bench_adversary.ax);
    ("fx", Bench_fault.fx);
    ("rg", Bench_registry.rg);
    ("px", Bench_pengine.px);
    ("fm", Bench_farm.fm);
    ("bd", Bench_bound.bd);
  ]

type options = {
  jobs : int;
  micro : bool;
  selected : string list;  (* in command-line order; [] = all *)
  json : string option;
}

let usage () =
  Format.eprintf
    "usage: main.exe [FIGURE...] [micro] [-j N] [--seq] [--json PATH] \
     [--no-json]@.";
  exit 1

let default_options =
  {
    jobs = max 1 (min 8 (Domain.recommended_domain_count () - 1));
    micro = false;
    selected = [];
    json = Some "BENCH_RESULTS.json";
  }

let rec parse opts = function
  | [] -> opts
  | "-j" :: n :: rest -> (
    match int_of_string_opt n with
    | Some j when j >= 1 -> parse { opts with jobs = j } rest
    | _ -> usage ())
  | "--seq" :: rest -> parse { opts with jobs = 1 } rest
  | "--json" :: path :: rest -> parse { opts with json = Some path } rest
  | "--no-json" :: rest -> parse { opts with json = None } rest
  | arg :: rest ->
    let a = String.lowercase_ascii arg in
    if a = "micro" then parse { opts with micro = true } rest
    else if List.mem_assoc a benches then
      parse { opts with selected = opts.selected @ [ a ] } rest
    else begin
      Format.eprintf "unknown bench id: %s@." arg;
      usage ()
    end

(* ---- job slots --------------------------------------------------------- *)

type slot =
  | Pending
  | Done of Report.job_result
  | Failed of string

let () =
  let opts =
    match Array.to_list Sys.argv with
    | _ :: rest -> parse default_options rest
    | [] -> default_options
  in
  let to_run =
    if opts.selected = [] && not opts.micro then benches
    else List.map (fun id -> (id, List.assoc id benches)) opts.selected
  in
  Format.printf
    "cost-sensitive analysis of communication protocols -- benchmark \
     harness@.";
  Format.printf
    "(paper: Awerbuch, Baratz, Peleg, PODC 1990 / MIT-LCS-TM-453)@.";
  (* Construct the figures (cheap: shared instances + job closures), then
     flatten every job into one task array over preallocated result
     slots. *)
  let figures = List.map (fun (_, make) -> make ()) to_run in
  let slots =
    List.map
      (fun fig -> Array.make (List.length fig.Report.jobs) Pending)
      figures
  in
  let tasks =
    List.concat
      (List.map2
         (fun fig fig_slots ->
           List.mapi
             (fun ji job () ->
               (* GC stats are domain-local in OCaml 5 and a job runs
                  wholly on one pool worker, so the delta is exactly this
                  job's allocation. Minor words come from the dedicated
                  [Gc.minor_words] external — quick_stat's field only
                  advances at minor collections (OCaml 5.1). *)
               let g0 = Gc.quick_stat () in
               let w0 = Gc.minor_words () in
               let t0 = Unix.gettimeofday () in
               match job.Report.run () with
               | rows ->
                 let wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
                 let g1 = Gc.quick_stat () in
                 fig_slots.(ji) <-
                   Done
                     {
                       Report.job_label = job.Report.label;
                       rows;
                       wall_ms;
                       alloc_minor_words = Gc.minor_words () -. w0;
                       alloc_promoted_words =
                         g1.Gc.promoted_words -. g0.Gc.promoted_words;
                       alloc_major_collections =
                         g1.Gc.major_collections - g0.Gc.major_collections;
                     }
               | exception e ->
                 fig_slots.(ji) <-
                   Failed
                     (Printf.sprintf "%s/%s: %s" fig.Report.id
                        job.Report.label (Printexc.to_string e)))
             fig.Report.jobs)
         figures slots)
    |> Array.of_list
  in
  (* Each task writes exactly one slot; the pool joins every domain
     before returning, so the post-run reads race with nothing. *)
  let pool = Csap_pool.create ~domains:opts.jobs () in
  let t0 = Unix.gettimeofday () in
  Csap_pool.run pool ~tasks:(Array.length tasks) (fun ~worker:_ i ->
      tasks.(i) ());
  let pool_wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let pool_busy_ms = Csap_pool.busy_ms pool in
  let figure_results =
    List.map2
      (fun fig fig_slots ->
        let res =
          Array.map
            (function
              | Done r -> r
              | Failed msg ->
                Format.eprintf "bench job failed: %s@." msg;
                exit 1
              | Pending -> assert false)
            fig_slots
        in
        (fig, res))
      figures slots
  in
  (* Render in declaration order, sequentially, after all jobs finished:
     the output is independent of the pool's scheduling. *)
  List.iter
    (fun (fig, res) ->
      Report.heading fig.Report.id fig.Report.title;
      fig.Report.render (Array.map (fun r -> r.Report.rows) res))
    figure_results;
  let micro_rows = if opts.micro then Bench_micro.run () else [] in
  (match opts.json with
  | None -> ()
  | Some path ->
    let figures_json =
      Report.json_list
        (fun (fig, res) ->
          Report.json_of_figure ~id:fig.Report.id ~title:fig.Report.title
            (Array.to_list res))
        figure_results
    in
    let micro_json =
      Report.json_list
        (fun (name, v) ->
          Printf.sprintf "{\"name\":\"%s\",\"value\":%s}"
            (Report.json_escape name)
            (Report.json_of_cell (Report.Float v)))
        micro_rows
    in
    let busy_json =
      "["
      ^ String.concat ","
          (Array.to_list
             (Array.map (Printf.sprintf "%.3f") pool_busy_ms))
      ^ "]"
    in
    let doc =
      Printf.sprintf
        "{\"harness\":\"csap-bench\",\"pool_domains\":%d,\"pool_wall_ms\":%.3f,\"pool_busy_ms\":%s,\"figures\":%s,\"micro\":%s}\n"
        opts.jobs pool_wall_ms busy_json figures_json micro_json
    in
    let oc = open_out path in
    output_string oc doc;
    close_out oc;
    Format.eprintf "wrote %s@." path);
  Format.printf "@.done.@."
