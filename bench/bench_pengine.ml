(* Bench PX: partitioned engine + streaming builders.

   Two tables:
   - bit-identity: flood and spt-async on small graphs, sequential vs
     partitioned across K domains under exact and seeded-oracle delays
     (the lockstep path). The [fail] column counts any divergence in
     measures, arrivals, distances or tree parents — it must be zero;
     the CI job asserts it.
   - scale sweep: million-vertex-capable families built through the
     streaming CSR constructors (grid, connected G(n,p)), timing the
     build, the sequential run and the partitioned run, with the
     allocation of the build and the process peak RSS alongside — the
     memory story of ISSUE's "no tuple edge lists".

   Sweep sizes: 10^4 and 10^5 everywhere; 10^6 rows are appended when
   CSAP_PX_BIG=1 (local runs; CI keeps the short sweep). The domain
   count defaults to min(recommended, 4) but never below 2, and can be
   pinned with CSAP_BENCH_DOMAINS — on single-CPU containers the
   partitioned run still executes (correctness is scheduling-blind);
   only the wall-clock ratio loses meaning. *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module Tree = Csap_graph.Tree
module Delay = Csap_dsim.Delay
module F = Csap.Flood
module S = Csap.Spt_async

let domains =
  match Sys.getenv_opt "CSAP_BENCH_DOMAINS" with
  | Some s when int_of_string_opt s <> None && int_of_string s >= 1 ->
    int_of_string s
  | _ -> max 2 (min 4 (Domain.recommended_domain_count ()))

let big = Sys.getenv_opt "CSAP_PX_BIG" = Some "1"

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

(* Like [wall] but also reports the minor-heap traffic of the call:
   (minor words allocated, minor collections finished). Domain-local, so
   only the calling domain's work is counted. *)
let wall_gc f =
  (* Minor words via the dedicated external — quick_stat's field only
     advances at minor collections (OCaml 5.1). *)
  let g0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
  let g1 = Gc.quick_stat () in
  ( r,
    ms,
    Gc.minor_words () -. w0,
    g1.Gc.minor_collections - g0.Gc.minor_collections )

(* VmHWM from /proc/self/status, in MB; 0 when unavailable. Process-wide
   high-water mark, so only the big rows move it meaningfully. *)
let peak_rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0.0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0.0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
            (fun kb -> float_of_int kb /. 1024.0)
        else scan ()
    in
    let r = scan () in
    close_in ic;
    r

let same_tree n a b =
  let ok = ref true in
  for v = 0 to n - 1 do
    if Tree.parent a v <> Tree.parent b v then ok := false
  done;
  !ok

(* ---- bit-identity table ------------------------------------------------ *)

let identity_cases =
  let grid = ("grid5x7", fun () -> Gen.grid 5 7 ~w:3) in
  let rand =
    ( "rand60",
      fun () ->
        Gen.random_connected (Csap_graph.Rng.create 11) 60 ~extra_edges:90
          ~wmax:9 )
  in
  let delays = [ ("exact", Delay.Exact); ("seeded", Delay.seeded 17) ] in
  List.concat_map
    (fun (fname, build) ->
      List.concat_map
        (fun (dname, delay) ->
          List.map (fun k -> (fname, build, dname, delay, k)) [ 2; 4 ])
        delays)
    [ grid; rand ]

let identity_row (fname, build, dname, delay, k) =
  let g = build () in
  let n = G.n g in
  let fs = F.run ~delay g ~source:0 in
  let fp = F.run_partitioned ~delay ~domains:k g ~source:0 in
  let flood_ok =
    fs.F.measures = fp.F.measures
    && fs.F.arrival = fp.F.arrival
    && same_tree n fs.F.tree fp.F.tree
  in
  let ss = S.run ~delay g ~source:0 in
  let sp = S.run_partitioned ~delay ~domains:k g ~source:0 in
  let spt_ok =
    ss.S.measures = sp.S.measures
    && ss.S.dist = sp.S.dist
    && same_tree n ss.S.tree sp.S.tree
  in
  [
    Report.Str fname;
    Report.Str dname;
    Report.Int k;
    Report.Int fs.F.measures.Csap.Measures.messages;
    Report.Int ss.S.measures.Csap.Measures.messages;
    Report.Int ((if flood_ok then 0 else 1) + if spt_ok then 0 else 2);
  ]

(* ---- scale sweep ------------------------------------------------------- *)

type family = { fname : string; build : int -> G.t }

let families =
  [
    {
      fname = "grid";
      build =
        (fun n ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Gen.grid_stream side side ~w:4);
    };
    {
      fname = "gnp";
      build =
        (fun n ->
          Gen.gnp ~connected:true ~seed:5 n
            ~p:(8.0 /. float_of_int (max 2 n - 1))
            ~wmax:8);
    };
  ]

let sizes = [ 10_000; 100_000 ] @ if big then [ 1_000_000 ] else []

let sweep_row { fname; build } n () =
  let a0 = Gc.allocated_bytes () in
  let g, build_ms = wall (fun () -> build n) in
  let build_mb = (Gc.allocated_bytes () -. a0) /. 1048576.0 in
  let flood_seq, seq_f, seq_f_mw, seq_f_gc =
    wall_gc (fun () -> F.run g ~source:0)
  in
  let flood_par, par_f =
    wall (fun () -> F.run_partitioned ~domains g ~source:0)
  in
  let spt_seq, seq_s, seq_s_mw, seq_s_gc =
    wall_gc (fun () -> S.run g ~source:0)
  in
  let spt_par, par_s =
    wall (fun () -> S.run_partitioned ~domains g ~source:0)
  in
  let ident =
    if
      flood_seq.F.measures = flood_par.F.measures
      && flood_seq.F.arrival = flood_par.F.arrival
      && spt_seq.S.measures = spt_par.S.measures
      && spt_seq.S.dist = spt_par.S.dist
    then 0
    else 1
  in
  [
    [
      Report.Str fname;
      Report.Int (G.n g);
      Report.Int (G.m g);
      Report.Float build_ms;
      Report.Float build_mb;
      Report.Float seq_f;
      Report.Float par_f;
      Report.Float (Report.ratio seq_f par_f);
      Report.Float seq_s;
      Report.Float par_s;
      Report.Float (Report.ratio seq_s par_s);
      Report.Int domains;
      Report.Int ident;
      Report.Float (peak_rss_mb ());
      (* Minor-heap traffic of the two sequential runs: allocated minor
         words (millions) and minor collections — the before/after gauge
         for the allocation-free delivery path. *)
      Report.Float (seq_f_mw /. 1e6);
      Report.Int seq_f_gc;
      Report.Float (seq_s_mw /. 1e6);
      Report.Int seq_s_gc;
    ];
  ]

(* One small row comparing the tuple-list and streaming builders on the
   same instance: the allocation column is the point. *)
let builder_row () =
  let side = 100 in
  let a0 = Gc.allocated_bytes () in
  let g_t, tuple_ms = wall (fun () -> Gen.grid side side ~w:4) in
  let tuple_mb = (Gc.allocated_bytes () -. a0) /. 1048576.0 in
  let a1 = Gc.allocated_bytes () in
  let g_s, stream_ms = wall (fun () -> Gen.grid_stream side side ~w:4) in
  let stream_mb = (Gc.allocated_bytes () -. a1) /. 1048576.0 in
  let identical =
    G.n g_t = G.n g_s
    && G.m g_t = G.m g_s
    && Array.init (G.m g_t) (fun i -> G.edge g_t i)
       = Array.init (G.m g_s) (fun i -> G.edge g_s i)
  in
  [
    [
      Report.Str "grid100x100";
      Report.Float tuple_ms;
      Report.Float tuple_mb;
      Report.Float stream_ms;
      Report.Float stream_mb;
      Report.Float (Report.ratio tuple_mb stream_mb);
      Report.Int (if identical then 0 else 1);
    ];
  ]

let px () =
  let sweep_jobs =
    List.concat_map
      (fun fam ->
        List.map
          (fun n ->
            Report.job
              (Printf.sprintf "%s-n%d" fam.fname n)
              (sweep_row fam n))
          sizes)
      families
  in
  {
    Report.id = "PX";
    title = "partitioned engine + streaming builders (bit-identity & scale)";
    jobs =
      Report.job "identity" (fun () -> List.map identity_row identity_cases)
      :: Report.job "builders" builder_row
      :: sweep_jobs;
    render =
      (fun results ->
        Report.subheading
          (Printf.sprintf
             "bit-identity: sequential vs %d/%d-domain runs (fail must be 0; \
              1=flood, 2=spt-async, 3=both)"
             2 4);
        Report.table
          ~columns:[ "family"; "delay"; "k"; "flood_msgs"; "spt_msgs"; "fail" ]
          results.(0);
        Report.subheading
          "builder comparison: tuple list vs streaming CSR, same instance";
        Report.table
          ~columns:
            [
              "instance"; "tuple_ms"; "tuple_MB"; "stream_ms"; "stream_MB";
              "alloc_ratio"; "fail";
            ]
          results.(1);
        Report.subheading
          (Printf.sprintf
             "scale sweep (%d domains; ratio = seq_ms / par_ms; ident must \
              be 0)"
             domains);
        Report.table
          ~columns:
            [
              "family"; "n"; "m"; "build_ms"; "build_MB"; "flood_seq_ms";
              "flood_par_ms"; "flood_x"; "spt_seq_ms"; "spt_par_ms"; "spt_x";
              "domains"; "ident"; "peak_rss_MB"; "flood_mwords_M";
              "flood_min_gcs"; "spt_mwords_M"; "spt_min_gcs";
            ]
          (List.concat
             (Array.to_list (Array.sub results 2 (Array.length results - 2)))));
  }
