(* Bench BD: machine-checked cost claims.

   One job per registry entry: sweep the entry's graph family
   (Bound_check's deterministic tiers), fit measured comm/time against
   every claimed bound expression, and report the fitted log-log slope
   per claim. The headline is the [fail] column: a claim whose measured
   curve grows faster than its expression (slope > 1 + tol) prints
   FAIL, and CI asserts the count is zero — the paper's tables as
   regression tests rather than eyeballed curves. *)

module P = Csap.Protocol
module BC = Csap.Bound_check
module B = Csap.Bound

let verdict_rows (r : BC.report) =
  List.map
    (fun (cv : BC.claim_verdict) ->
      let v = cv.BC.verdict in
      [
        Report.Str r.BC.name;
        Report.Str r.BC.family;
        Report.Str (BC.regime_name r.BC.regime);
        Report.Str (P.Claim.metric_name cv.BC.claim.P.Claim.metric);
        Report.Str (B.to_string cv.BC.claim.P.Claim.bound);
        Report.Float v.B.slope;
        Report.Float v.B.r2;
        Report.Float v.B.ratio_max;
        Report.Int v.B.points;
        Report.Str (if v.B.within then "ok" else "FAIL");
        Report.Str (Option.value v.B.note ~default:"");
      ])
    r.BC.claims

let entry_job entry =
  let (module M : P.S) = entry in
  {
    Report.label = M.name;
    run = (fun () -> verdict_rows (BC.check_entry entry));
  }

(* Worst-case regimes for the explorer roster: the same claims fitted
   against per-instance maxima over an adversary battery. Informational
   — the batteries under-approximate the true sup, so an exceedance is
   a lead, not a regression. *)
let regime_job regime entry =
  let (module M : P.S) = entry in
  {
    Report.label =
      Printf.sprintf "%s/%s" M.name (BC.regime_name regime);
    run = (fun () -> verdict_rows (BC.check_entry_regime ~regime entry));
  }

let bd () =
  {
    Report.id = "BD";
    title = "symbolic bound check: measured growth vs claimed expressions";
    jobs =
      List.map entry_job P.registry
      @ List.concat_map
          (fun regime -> List.map (regime_job regime) (BC.regime_roster ()))
          [ BC.Sched_worst; BC.Adaptive_worst ];
    render =
      (fun results ->
        let rows = Report.all_rows results in
        let is_clean row =
          match List.nth row 2 with
          | Report.Str "clean" -> true
          | _ -> false
        in
        let count_fails rows =
          List.length
            (List.filter
               (fun row ->
                 match List.nth row 9 with
                 | Report.Str "FAIL" -> true
                 | _ -> false)
               rows)
        in
        let clean_rows, regime_rows = List.partition is_clean rows in
        let fails = count_fails clean_rows in
        let regime_fails = count_fails regime_rows in
        Format.printf
          "every registry claim fitted over its family sweep; slope is \
           the log-log growth of measured against bound (within = slope \
           <= %.2f, or flat bound + flat measurement); sched-worst / \
           adaptive-worst rows fit per-instance battery maxima@."
          (1.0 +. B.default_slope_tol);
        Report.table
          ~columns:
            [
              "protocol"; "family"; "regime"; "metric"; "claimed"; "slope";
              "r2"; "ratio_max"; "pts"; "fit"; "note";
            ]
          rows;
        Format.printf
          "shape check: clean fit failures = %d — %s@." fails
          (if fails = 0 then
             "every measured curve stays within its claimed expression"
           else "MEASURED GROWTH EXCEEDS A CLAIMED BOUND");
        Format.printf
          "worst-case regimes: %d slope exceedance(s) over %d fits \
           (informational, not gated: the batteries under-approximate \
           the sup over schedules)@."
          regime_fails (List.length regime_rows));
  }
