(* Bench F3: the MST algorithms table (paper Figure 3). *)

module G = Csap_graph.Graph
module Gen = Csap_graph.Generators
module P = Csap_graph.Params

let row name build =
  Report.row_job name (fun () ->
      let g = build () in
      let p = P.compute g in
      let e = float_of_int p.P.script_e in
      let v = float_of_int p.P.script_v in
      let n = float_of_int p.P.n in
      let ghs = (Csap.Mst_ghs.run g).Csap.Mst_ghs.measures in
      let centr =
        (Csap.Centr_growth.run_mst g ~root:0).Csap.Centr_growth.measures
      in
      let fast = (Csap.Mst_fast.run g).Csap.Mst_fast.measures in
      let hyb = (Csap.Mst_hybrid.run g ~root:0).Csap.Mst_hybrid.measures in
      let ghs_bound = e +. (v *. Report.log2 n) in
      let centr_bound = n *. v in
      let fast_bound = e *. Report.log2 n *. Report.log2 (max 2.0 v) in
      [
        Report.Str name;
        Report.Int p.P.n;
        Report.Int ghs.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int ghs.Csap.Measures.comm) ghs_bound);
        Report.Int centr.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int centr.Csap.Measures.comm) centr_bound);
        Report.Int fast.Csap.Measures.comm;
        Report.Float
          (Report.ratio (float_of_int fast.Csap.Measures.comm) fast_bound);
        Report.Int hyb.Csap.Measures.comm;
        Report.Float
          (Report.ratio
             (float_of_int hyb.Csap.Measures.comm)
             (Float.min ghs_bound centr_bound));
      ])

let time_row name build =
  Report.row_job
    (Printf.sprintf "time %s" name)
    (fun () ->
      let g = build () in
      let p = P.compute g in
      let mst = Csap_graph.Mst.prim g ~root:0 in
      let diam_mst = float_of_int (Csap_graph.Tree.diameter mst) in
      let ghs = (Csap.Mst_ghs.run g).Csap.Mst_ghs.measures in
      let fast = (Csap.Mst_fast.run g).Csap.Mst_fast.measures in
      let v = float_of_int p.P.script_v in
      [
        Report.Str name;
        Report.Int p.P.script_e;
        Report.Float diam_mst;
        Report.Float ghs.Csap.Measures.time;
        Report.Float
          (Report.ratio ghs.Csap.Measures.time (float_of_int p.P.script_e));
        Report.Float fast.Csap.Measures.time;
        Report.Float
          (Report.ratio fast.Csap.Measures.time
             (diam_mst *. Report.log2 (max 2.0 v)
             *. Report.log2 (float_of_int p.P.n)));
      ])

let f3 () =
  let comm_jobs =
    [
      row "grid" (fun () -> Gen.grid 5 8 ~w:4);
      row "complete" (fun () -> Gen.complete 16 ~w:6);
      row "random" (fun () ->
          Gen.random_connected (Csap_graph.Rng.create 5) 40 ~extra_edges:60
            ~wmax:12);
      row "G_n x=6" (fun () -> Gen.lower_bound_gn 20 ~x:6);
      row "bkj" (fun () -> Gen.bkj_star_cycle 24 ~heavy:100);
    ]
  in
  let time_jobs =
    [
      time_row "complete 16" (fun () -> Gen.complete 16 ~w:50);
      time_row "complete 24" (fun () -> Gen.complete 24 ~w:50);
      time_row "grid" (fun () -> Gen.grid 5 8 ~w:6);
    ]
  in
  let n_comm = List.length comm_jobs in
  {
    Report.id = "F3";
    title = "minimum spanning trees (Figure 3)";
    jobs = comm_jobs @ time_jobs;
    render =
      (fun results ->
        Format.printf
          "paper: MST_ghs O(E + V log n), MST_centr O(nV), MST_fast O(E \
           log n log V), MST_hybrid O(min{E + V log n, nV})@.";
        Report.subheading "communication";
        Report.table
          ~columns:
            [
              "family"; "n"; "ghs"; "/bnd"; "centr"; "/bnd"; "fast"; "/bnd";
              "hybrid"; "/min bnd";
            ]
          (Report.all_rows (Array.sub results 0 n_comm));
        Report.subheading
          "time: MST_fast's parallel scan vs MST_ghs's serial scan (dense \
           case)";
        Report.table
          ~columns:
            [
              "family"; "E"; "Diam(MST)"; "ghs time"; "/E"; "fast time";
              "/(Diam logV logn)";
            ]
          (Report.all_rows
             (Array.sub results n_comm (Array.length results - n_comm)));
        Format.printf
          "shape check: every ratio column stays bounded across families; \
           MST_fast's time beats MST_ghs's on the dense instances; the \
           hybrid tracks the cheaper bound on every row within the \
           controller's O(log^2 c) metering envelope (Cor 5.1) times the \
           x2 alternation.@.");
  }
