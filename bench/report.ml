(* Table-printing helpers shared by the per-figure benchmarks, plus the
   deferred-figure model that the parallel harness in [main.ml] runs.

   Each bench regenerates one of the paper's figures: it prints the same
   rows the figure states, with measured weighted costs next to the bound
   evaluated on the instance, so the *shape* (who wins, by what factor,
   where the crossovers fall) can be read off directly.

   A figure is declared as a list of independent *jobs* — one per
   (family, n) cell — and a render function that consumes the results in
   declaration order. Jobs carry no shared mutable state, so the pool in
   [main.ml] can run them on OCaml 5 domains in any order and the
   rendered tables are byte-identical to a sequential run. *)

let heading id title = Format.printf "@.==== %s: %s ====@." id title

let subheading text = Format.printf "-- %s@." text

type cell =
  | Int of int
  | Float of float
  | Str of string

let cell_to_string = function
  | Int i -> string_of_int i
  | Float f ->
    if Float.is_nan f then "-"
    else if Float.abs f >= 100.0 then Printf.sprintf "%.0f" f
    else Printf.sprintf "%.2f" f
  | Str s -> s

let table ~columns rows =
  let widths =
    List.mapi
      (fun i name ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (cell_to_string (List.nth row i))))
          (String.length name) rows)
      columns
  in
  let print_row cells =
    List.iteri
      (fun i cell ->
        Format.printf "%*s  " (List.nth widths i) (cell_to_string cell))
      cells;
    Format.printf "@."
  in
  print_row (List.map (fun name -> Str name) columns);
  List.iter print_row rows

(* Ratio of a measurement against a bound: the headline number for shape
   checks ("stays flat across the sweep" = matching asymptotics). *)
let ratio measured bound = if bound <= 0.0 then nan else measured /. bound

let log2 x = log x /. log 2.0

(* ---- deferred figures ------------------------------------------------- *)

(* One independent unit of benchmark work: typically a single (family, n)
   table row. [run] must be self-contained — it may build graphs and run
   protocols but must not print or touch shared mutable state. It returns
   a list of rows (usually one). *)
type job = {
  label : string;
  run : unit -> cell list list;
}

type figure = {
  id : string;
  title : string;
  jobs : job list;
  (* [render results] prints the figure body (everything after the
     heading); [results.(i)] holds job [i]'s rows. *)
  render : cell list list array -> unit;
}

(* A timed job result, as recorded by the pool. The alloc_* fields are
   the GC delta over the job body, read from the worker domain's own
   counters (OCaml 5 GC stats are domain-local, and a job runs entirely
   on one domain): minor words allocated, words promoted to the major
   heap, and major collections finished. *)
type job_result = {
  job_label : string;
  rows : cell list list;
  wall_ms : float;
  alloc_minor_words : float;
  alloc_promoted_words : float;
  alloc_major_collections : int;
}

let job label run = { label; run }

(* A job wrapping a single row. *)
let row_job label run = { label; run = (fun () -> [ run () ]) }

(* Concatenate the rows of every job result, in job order: the common
   render pattern for figures that are exactly one table. *)
let all_rows results = List.concat (Array.to_list results)

(* ---- JSON emission ---------------------------------------------------- *)
(* Hand-rolled writer (the environment has no JSON library); the output
   is plain JSON, validated by the CI smoke job. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_cell = function
  | Int i -> string_of_int i
  | Float f ->
    (* JSON has no nan/infinity literals. *)
    if Float.is_nan f || Float.abs f = infinity then "null"
    else Printf.sprintf "%.6g" f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let json_list to_json xs =
  "[" ^ String.concat "," (List.map to_json xs) ^ "]"

let json_of_row row = json_list json_of_cell row

let json_of_job_result r =
  Printf.sprintf
    "{\"label\":\"%s\",\"wall_ms\":%.3f,\"alloc_minor_words\":%.0f,\"alloc_promoted_words\":%.0f,\"alloc_major_collections\":%d,\"rows\":%s}"
    (json_escape r.job_label) r.wall_ms r.alloc_minor_words
    r.alloc_promoted_words r.alloc_major_collections
    (json_list json_of_row r.rows)

let json_of_figure ~id ~title results =
  Printf.sprintf "{\"id\":\"%s\",\"title\":\"%s\",\"cells\":%s}"
    (json_escape id) (json_escape title)
    (json_list json_of_job_result results)
