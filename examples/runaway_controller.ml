(* The controller (Section 5): a protocol that diverges on bad input is
   stopped near its declared budget instead of flooding the network
   forever.

   Run with: dune exec examples/runaway_controller.exe *)

module E = Csap_dsim.Engine
module G = Csap_graph.Graph

type msg = Gossip of int

(* A protocol with a bug: on input "42" a vertex echoes every message
   forever instead of forwarding each fact once. *)
let run ~buggy ~controlled () =
  let g = Csap_graph.Generators.grid 4 4 ~w:3 in
  let c_pi = 2 * G.total_weight g in
  let eng = E.create g in
  let aborted = ref false in
  let ctl =
    Csap.Controller.create ~engine:eng ~inject:Fun.id ~initiator:0
      ~threshold:(2 * c_pi)
      ~on_abort:(fun () -> aborted := true)
      ()
  in
  let seen = Array.make (G.n g) false in
  let forward v ~except x =
    G.iter_neighbors g v (fun u _ _ ->
        if u <> except then
          if controlled then Csap.Controller.send ctl ~src:v ~dst:u (Gossip x)
          else E.send eng ~src:v ~dst:u (Csap.Controller.Payload (Gossip x)))
  in
  let deliver v src (Gossip x) =
    if buggy && x = 42 then forward v ~except:(-1) x (* echo storm *)
    else if not seen.(v) then begin
      seen.(v) <- true;
      forward v ~except:src x
    end
  in
  for v = 0 to G.n g - 1 do
    E.set_handler eng v (fun ~src m ->
        if controlled then
          match Csap.Controller.handle ctl ~me:v ~src m with
          | Some payload -> deliver v src payload
          | None -> ()
        else
          match m with
          | Csap.Controller.Payload p -> deliver v src p
          | Csap.Controller.Request _ | Csap.Controller.Grant _ -> ())
  done;
  E.schedule eng ~delay:0.0 (fun () ->
      seen.(0) <- true;
      forward 0 ~except:(-1) (if buggy then 42 else 7));
  let events = E.run ~max_events:100_000 eng in
  let m = E.metrics eng in
  Format.printf
    "  %-12s %-10s comm=%-8d events=%-7d %s@."
    (if buggy then "buggy" else "correct")
    (if controlled then "controlled" else "bare")
    m.Csap_dsim.Metrics.weighted_comm events
    (if !aborted then "<- controller suspended the execution"
     else if events >= 100_000 then "<- RUNAWAY (cut off by the simulator)"
     else "finished normally")

let () =
  Format.printf "broadcast with budget c_pi, threshold 2 c_pi:@.";
  run ~buggy:false ~controlled:false ();
  run ~buggy:false ~controlled:true ();
  run ~buggy:true ~controlled:false ();
  run ~buggy:true ~controlled:true ();
  Format.printf
    "@.the controller leaves correct executions untouched and halts the@.";
  Format.printf "diverged one after spending at most its threshold.@."
