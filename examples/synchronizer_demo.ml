(* Synchronizer gamma_w in action (Section 4): run a synchronous protocol
   on an asynchronous network with nasty random delays, and show the
   execution is *identical* to the synchronous reference while the
   per-pulse overhead stays far below the naive alpha_w synchronizer's.

   The protocol here is an in-synch gossip: on every pulse divisible by
   w(e), a vertex ships its state digest over e (Definition 4.2 — what the
   Lemma 4.5 transformation produces for arbitrary protocols).

   Run with: dune exec examples/synchronizer_demo.exe *)

module G = Csap_graph.Graph
module SP = Csap_dsim.Sync_protocol

let gossip =
  {
    SP.init = (fun _ ~me -> me + 1);
    on_pulse =
      (fun g ~me ~pulse ~inbox state ->
        let state =
          List.fold_left (fun acc (src, x) -> (acc * 31) + x + src) state inbox
        in
        let sends =
          List.rev
            (G.fold_neighbors g me
               (fun acc u w _ -> if pulse mod w = 0 then (u, state) :: acc else acc)
               [])
        in
        (state, sends))
  }

let () =
  (* A normalized network (weights are powers of two). *)
  let rng = Csap_graph.Rng.create 7 in
  let g0 =
    Csap_graph.Generators.random_connected rng 40 ~extra_edges:40 ~wmax:60
  in
  let g = Csap.Normalize.graph g0 in
  let pulses = 64 in

  Format.printf
    "network: n=%d m=%d W=%d, running %d pulses of an in-synch gossip@.@."
    (G.n g) (G.m g) (G.max_weight g) pulses;

  (* Ground truth: the weighted synchronous execution. *)
  let reference = Csap_dsim.Sync_runner.run g gossip ~pulses in

  let delay () = Csap_dsim.Delay.Uniform (Csap_graph.Rng.create 99) in
  Format.printf "%-10s %12s %16s %14s %8s@." "sync" "proto comm"
    "overhead/pulse" "time/pulse" "exact?";
  List.iter
    (fun (name, run) ->
      let o = run () in
      let exact =
        o.Csap.Synchronizer.states = reference.Csap_dsim.Sync_runner.states
      in
      Format.printf "%-10s %12d %16.1f %14.2f %8b@." name
        o.Csap.Synchronizer.proto_comm o.Csap.Synchronizer.amortized_comm
        o.Csap.Synchronizer.amortized_time exact)
    [
      ( "alpha_w",
        fun () -> Csap.Synchronizer.run_alpha ~delay:(delay ()) g gossip ~pulses );
      ( "beta_w",
        fun () -> Csap.Synchronizer.run_beta ~delay:(delay ()) g gossip ~pulses );
      ( "gamma_w",
        fun () ->
          Csap.Synchronizer.run_gamma_w ~delay:(delay ()) ~k:2 g gossip ~pulses );
    ];
  Format.printf
    "@.every synchronizer reproduced the synchronous execution exactly;@.";
  Format.printf
    "gamma_w cleans heavy links once per w(e) pulses instead of every pulse.@."
