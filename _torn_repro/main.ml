module Manifest = Csap_farm.Manifest
module Cell = Csap_farm.Cell

let () =
  let dir = Filename.temp_file "torn" "" in
  Sys.remove dir; Unix.mkdir dir 0o755;
  let path = Filename.concat dir "MANIFEST.jsonl" in
  let m = Manifest.create path in
  let e = Manifest.add m (Cell.make ~family:"grid" ~n:9 "flood") in
  Manifest.set_state m e Manifest.Running;
  Manifest.close m;
  (* simulate a crash mid-append: torn final line, no newline *)
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
  output_string oc {|{"kind":"state","id":0,"st|};
  close_out oc;
  (* resume: writable load, then record a new transition *)
  let m' = Manifest.load path in
  Printf.printf "torn=%b\n" (Manifest.torn m');
  let e' = match Manifest.find m' 0 with Some e -> e | None -> assert false in
  Manifest.set_state m' e' Manifest.Done;
  Manifest.close m';
  (* now try to load again, as `status` or a second resume would *)
  (match Manifest.load ~readonly:true path with
   | _ -> print_endline "second load: OK"
   | exception Invalid_argument msg -> Printf.printf "second load FAILED: %s\n" msg);
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  print_string "--- file ---\n"; print_string body
